//! Process-separated shard workers: the remote sharded state-vector engine.
//!
//! [`super::ShardedStateVector`] stripes the amplitude vector across lock
//! guards in one address space. This module removes that last assumption:
//! [`RemoteShardedEngine`] places each of the `2^k` amplitude shards in a
//! dedicated *worker rank* — its own thread of control with its own mailbox,
//! spawned via [`cmpi::Universe::spawn_workers`] — and turns every shard
//! interaction into a [`cmpi`] message protocol. Nothing but messages
//! crosses the shard boundary, which is the paper's actual deployment model
//! (Section 4: shards live in separate QMPI nodes) and the shape NetQMPI
//! gives its MPI simulation workers.
//!
//! ## Roles and message flow
//!
//! The engine is the *controller* (rank 0 of a private worker world); shard
//! `s` is owned by worker rank `s + 1`. Three tag channels exist:
//!
//! | tag | direction | carries |
//! |---|---|---|
//! | `TAG_CMD` | controller → worker | [`ShardCmd`] (gates, queries, lifecycle) |
//! | `TAG_REPLY` | worker → controller | [`ShardReply`] (partial sums, stripes) |
//! | `TAG_XCHG` | worker ↔ worker | stripe amplitudes for cross-shard pairing |
//!
//! Every command broadcast happens under one controller lock, so all
//! workers observe the *same global command order*; each worker applies its
//! commands sequentially from its mailbox (FIFO per sender under cmpi's
//! non-overtaking guarantee). Together those two facts give every stripe a
//! single consistent history — the property the in-process engine gets from
//! its axis lock — without any shared memory.
//!
//! * **Gate streams** are *planned*: the controller decomposes each gate
//!   into per-stripe moves ([`WorkerOp`]) and ships every worker its share
//!   of the whole stream as ONE framed [`ShardCmd::Batch`] message — one
//!   command round per batch instead of one per gate, which is the QMPI
//!   paper's aggregation argument applied to the simulator's own
//!   transport. The eager (unbatched) path ships single-op frames through
//!   the identical planner, so the two paths execute the same kernels in
//!   the same order and stay bit-identical per seed.
//! * **Within-shard gates** become [`WorkerOp::PairWithin`] entries;
//!   workers run the identical [`qsim::stripe`] kernels the lock-striped
//!   store uses, in parallel.
//! * **Cross-shard gates** pair shard `s0` with `s0 | tbit`: the high
//!   member ships its stripe to the low member ([`WorkerOp::CrossHigh`] /
//!   [`WorkerOp::CrossLow`]), which zips the pair kernel across both
//!   stripes and ships the updated half back. Every worker walks its
//!   batch frame in the same global gate order, so exchanges inside a
//!   batch pair up deadlock-free.
//! * **SWAP** is a dedicated one-round stripe exchange
//!   ([`WorkerOp::SwapWithin`] / [`WorkerOp::SwapCrossLow`] /
//!   [`WorkerOp::SwapFull`]): a pure amplitude permutation costing at most
//!   one exchange per shard pair, where the previous three-CNOT
//!   realization paid three (6 cross-shard stripe transfers).
//! * **Measurement** is a reduction: a probability query fans out, partial
//!   masses come back, the controller samples, and a collapse + rescale
//!   round trip finishes the projection.
//! * **Expectation values** are gather-free: [`ShardCmd::Expect`] pairs
//!   each shard with its `x_mask`-partner ([`ExpectRole`]), the partners
//!   exchange stripes worker↔worker, and only complex partial sums flow
//!   to the controller — never the amplitude vector.
//! * **Noise** is sampled on the controller (same seeded
//!   [`qsim::noise::NoiseState`] stream as the dense engine, so single-
//!   threaded trajectories are identical) and injected as uncounted
//!   single-qubit gate commands — planned into the same batch frame as
//!   the gates they ride on, in eager draw order.
//! * **Structural operations** (allocate/free qubits, snapshots) gather the
//!   stripes, rebuild, and scatter — the message-passing analogue of the
//!   in-process store's flatten/rebuild.
//!
//! ## Deadlock watchdog
//!
//! A dead or deadlocked worker must fail CI with a diagnostic, not hang it.
//! Every blocking receive the controller (and a worker awaiting its
//! exchange partner) performs goes through [`cmpi::Communicator::recv_timeout`]
//! with the engine's watchdog duration (default 30 s, overridable via the
//! `QMPI_REMOTE_WATCHDOG_MS` environment variable at engine construction or
//! [`RemoteShardedEngine::with_watchdog`]); expiry panics with the shard and
//! operation that timed out.
//!
//! The engine implements [`super::ShardableEngine`], so it slots under the
//! existing [`super::ShardedShared`] reader-writer locality wrapper
//! unchanged: select it with [`super::BackendKind::RemoteSharded`].

use super::remote_transport::{ProcessHandle, ProcessLink};
use super::{BackendKind, TransportStats};
use bytes::{Bytes, BytesMut};
use cmpi::{
    Communicator, Decode, Encode, SourceSel, TransportKind, Universe, WorkerGroup, WorkerLease,
    WorkerPool,
};
use parking_lot::Mutex;
use qsim::gates::Mat2;
use qsim::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use qsim::registry::QubitRegistry;
use qsim::state::NORM_TOL;
use qsim::stripe;
use qsim::{Complex, Gate, Pauli, QubitId, SimError, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Command channel: controller → worker.
const TAG_CMD: cmpi::Tag = 0;
/// Reply channel: worker → controller.
const TAG_REPLY: cmpi::Tag = 1;
/// Stripe-exchange channel: worker ↔ worker (cross-shard pairing).
const TAG_XCHG: cmpi::Tag = 2;

/// The controller's rank in the private worker world.
const CONTROLLER: usize = 0;

/// Hard cap on the worker count (`2^6` = 64 worker ranks); each shard is a
/// real thread with a mailbox, so this is deliberately tighter than the
/// in-process stripe cap.
pub const MAX_REMOTE_SHARD_BITS: u32 = 6;

/// Default watchdog for blocking protocol receives.
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

pub(crate) fn watchdog_from_env() -> Duration {
    std::env::var("QMPI_REMOTE_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_WATCHDOG)
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

fn encode_complex(c: &Complex, buf: &mut BytesMut) {
    c.re.encode(buf);
    c.im.encode(buf);
}

fn decode_complex(buf: &mut Bytes) -> Option<Complex> {
    let re = f64::decode(buf)?;
    let im = f64::decode(buf)?;
    Some(Complex::new(re, im))
}

fn encode_amps(amps: &[Complex], buf: &mut BytesMut) {
    amps.len().encode(buf);
    for a in amps {
        encode_complex(a, buf);
    }
}

fn decode_amps(buf: &mut Bytes) -> Option<Vec<Complex>> {
    let len = usize::decode(buf)?;
    // 16 wire bytes per amplitude; reject corrupted lengths early.
    if len > buf.len() / 16 {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(decode_complex(buf)?);
    }
    Some(out)
}

fn encode_mat(m: &Mat2, buf: &mut BytesMut) {
    for row in m {
        for c in row {
            encode_complex(c, buf);
        }
    }
}

fn decode_mat(buf: &mut Bytes) -> Option<Mat2> {
    let mut m = [[Complex::default(); 2]; 2];
    for row in &mut m {
        for c in row.iter_mut() {
            *c = decode_complex(buf)?;
        }
    }
    Some(m)
}

/// Stripe payload exchanged between cross-shard pairing partners.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAmps(pub Vec<Complex>);

impl Encode for WireAmps {
    fn encode(&self, buf: &mut BytesMut) {
        encode_amps(&self.0, buf);
    }
}

impl Decode for WireAmps {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        decode_amps(buf).map(WireAmps)
    }
}

/// The amplitude-pair kernel a pairing command applies: a full 2x2 unitary
/// or the CNOT/SWAP fast path (a pure amplitude swap, no arithmetic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PairKernel {
    /// Swap the pair members (CNOT/SWAP fast path).
    Swap,
    /// Multiply the pair by a 2x2 matrix.
    Mat(Mat2),
}

impl PairKernel {
    /// Runs the kernel over within-stripe pairs (target bit inside the
    /// stripe). Identical arithmetic to the dense and lock-striped engines.
    fn apply_within(self, amps: &mut [Complex], c_lo: usize, tbit: usize) {
        match self {
            PairKernel::Swap => stripe::pair_within(amps, c_lo, tbit, |a0, a1| {
                std::mem::swap(a0, a1);
            }),
            PairKernel::Mat(m) => stripe::pair_within(amps, c_lo, tbit, |a0, a1| {
                let (x0, x1) = (*a0, *a1);
                *a0 = m[0][0] * x0 + m[0][1] * x1;
                *a1 = m[1][0] * x0 + m[1][1] * x1;
            }),
        }
    }

    /// Runs the kernel across a stripe pair (target bit selects the shard).
    fn apply_across(self, a: &mut [Complex], b: &mut [Complex], c_lo: usize) {
        match self {
            PairKernel::Swap => stripe::pair_across(a, b, c_lo, |a0, a1| {
                std::mem::swap(a0, a1);
            }),
            PairKernel::Mat(m) => stripe::pair_across(a, b, c_lo, |a0, a1| {
                let (x0, x1) = (*a0, *a1);
                *a0 = m[0][0] * x0 + m[0][1] * x1;
                *a1 = m[1][0] * x0 + m[1][1] * x1;
            }),
        }
    }
}

impl Encode for PairKernel {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PairKernel::Swap => 0u8.encode(buf),
            PairKernel::Mat(m) => {
                1u8.encode(buf);
                encode_mat(m, buf);
            }
        }
    }
}

impl Decode for PairKernel {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(PairKernel::Swap),
            1 => decode_mat(buf).map(PairKernel::Mat),
            _ => None,
        }
    }
}

/// One gate-stream operation inside a [`ShardCmd::Batch`] frame. These are
/// the per-stripe moves a unitary gate decomposes into once the shard
/// layout is known; the controller plans a whole [`qsim::GateBatch`] into
/// one `Vec<WorkerOp>` per participating worker, so N gates cost one
/// framed command message per worker instead of N.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerOp {
    /// Apply a pair kernel to within-stripe pairs.
    PairWithin {
        /// Within-stripe control mask.
        c_lo: usize,
        /// Target bit (within-stripe).
        tbit: usize,
        /// Kernel to apply.
        kernel: PairKernel,
    },
    /// Cross-shard pairing, low member: await the partner's stripe on
    /// `TAG_XCHG`, zip the kernel across both, ship the partner's half back.
    CrossLow {
        /// World rank of the high partner.
        partner: usize,
        /// Within-stripe control mask.
        c_lo: usize,
        /// Kernel to apply.
        kernel: PairKernel,
    },
    /// Cross-shard pairing, high member: ship the stripe to the low
    /// partner, await the updated amplitudes. (Shared by the pair-gate and
    /// mixed-SWAP exchanges — the high side's role is identical.)
    CrossHigh {
        /// World rank of the low partner.
        partner: usize,
    },
    /// Diagonal phase pass (CZ): negate amplitudes matching the mask.
    Phase {
        /// Within-stripe mask selecting negated amplitudes.
        lo_mask: usize,
    },
    /// One-pass SWAP of two within-stripe qubits.
    SwapWithin {
        /// Bit of the first qubit (within-stripe).
        abit: usize,
        /// Bit of the second qubit (within-stripe).
        bbit: usize,
    },
    /// Mixed SWAP (one qubit within-stripe, one shard-selecting), low
    /// member: await the partner's stripe, run
    /// [`stripe::swap_across_mixed`], ship the partner's half back. One
    /// exchange round instead of the three CNOT passes (6 transfers) of
    /// the naive realization.
    SwapCrossLow {
        /// World rank of the high partner.
        partner: usize,
        /// Within-stripe bit of the local qubit.
        abit: usize,
    },
    /// Shard-selecting SWAP of two high qubits: trade entire stripes with
    /// the partner, offset-for-offset. Both members execute this op (sends
    /// are buffered, so both send first and then receive).
    SwapFull {
        /// World rank of the partner shard.
        partner: usize,
    },
    /// One-pass merged diagonal sweep ([`qsim::BatchOp::PhaseSweep`]
    /// planned onto this shard): every factor multiplies sequentially in
    /// vec order against the within-stripe offset, then odd flip-parity
    /// negates. Shard-local (no exchange); the whole merged run of
    /// diagonal gates rides as one op in the batch frame.
    PhaseSweep {
        /// `(lo_mask, d0, d1)` factors in plan order. A factor whose
        /// qubit selects the shard arrives with `lo_mask = 0` and both
        /// entries set to the branch this shard lives on, so the worker's
        /// sequential multiply reproduces the dense engine's
        /// floating-point sequence exactly.
        diags: Vec<(usize, Complex, Complex)>,
        /// Within-stripe CZ masks (negate where fully set); pairs whose
        /// shard-selecting bits this shard does not satisfy are omitted
        /// at plan time, and a pair of two shard-selecting qubits that
        /// this shard satisfies arrives as `0` (negate the whole stripe).
        flips: Vec<usize>,
    },
}

impl Encode for WorkerOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WorkerOp::PairWithin { c_lo, tbit, kernel } => {
                0u8.encode(buf);
                c_lo.encode(buf);
                tbit.encode(buf);
                kernel.encode(buf);
            }
            WorkerOp::CrossLow {
                partner,
                c_lo,
                kernel,
            } => {
                1u8.encode(buf);
                partner.encode(buf);
                c_lo.encode(buf);
                kernel.encode(buf);
            }
            WorkerOp::CrossHigh { partner } => {
                2u8.encode(buf);
                partner.encode(buf);
            }
            WorkerOp::Phase { lo_mask } => {
                3u8.encode(buf);
                lo_mask.encode(buf);
            }
            WorkerOp::SwapWithin { abit, bbit } => {
                4u8.encode(buf);
                abit.encode(buf);
                bbit.encode(buf);
            }
            WorkerOp::SwapCrossLow { partner, abit } => {
                5u8.encode(buf);
                partner.encode(buf);
                abit.encode(buf);
            }
            WorkerOp::SwapFull { partner } => {
                6u8.encode(buf);
                partner.encode(buf);
            }
            WorkerOp::PhaseSweep { diags, flips } => {
                7u8.encode(buf);
                diags.len().encode(buf);
                for (mask, d0, d1) in diags {
                    mask.encode(buf);
                    encode_complex(d0, buf);
                    encode_complex(d1, buf);
                }
                flips.len().encode(buf);
                for f in flips {
                    f.encode(buf);
                }
            }
        }
    }
}

impl Decode for WorkerOp {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => WorkerOp::PairWithin {
                c_lo: usize::decode(buf)?,
                tbit: usize::decode(buf)?,
                kernel: PairKernel::decode(buf)?,
            },
            1 => WorkerOp::CrossLow {
                partner: usize::decode(buf)?,
                c_lo: usize::decode(buf)?,
                kernel: PairKernel::decode(buf)?,
            },
            2 => WorkerOp::CrossHigh {
                partner: usize::decode(buf)?,
            },
            3 => WorkerOp::Phase {
                lo_mask: usize::decode(buf)?,
            },
            4 => WorkerOp::SwapWithin {
                abit: usize::decode(buf)?,
                bbit: usize::decode(buf)?,
            },
            5 => WorkerOp::SwapCrossLow {
                partner: usize::decode(buf)?,
                abit: usize::decode(buf)?,
            },
            6 => WorkerOp::SwapFull {
                partner: usize::decode(buf)?,
            },
            7 => {
                let n = usize::decode(buf)?;
                // 40 wire bytes per factor (mask + two complex); reject
                // corrupted lengths before allocating.
                if n > buf.len() / 40 {
                    return None;
                }
                let mut diags = Vec::with_capacity(n);
                for _ in 0..n {
                    let mask = usize::decode(buf)?;
                    let d0 = decode_complex(buf)?;
                    let d1 = decode_complex(buf)?;
                    diags.push((mask, d0, d1));
                }
                let n = usize::decode(buf)?;
                if n > buf.len() / 8 {
                    return None;
                }
                let mut flips = Vec::with_capacity(n);
                for _ in 0..n {
                    flips.push(usize::decode(buf)?);
                }
                WorkerOp::PhaseSweep { diags, flips }
            }
            _ => return None,
        })
    }
}

/// Which role a worker plays in a distributed (gather-free) Pauli
/// expectation evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExpectRole {
    /// No shard-crossing X mask: evaluate over the local stripe alone.
    Solo,
    /// Paired evaluation, low shard index: receive the partner's stripe,
    /// accumulate both stripes' contributions, reply with the partial.
    Low {
        /// World rank of the high partner.
        partner: usize,
    },
    /// Paired evaluation, high shard index: ship the stripe to the low
    /// partner; no reply (the low member reports for both).
    High {
        /// World rank of the low partner.
        partner: usize,
    },
}

impl Encode for ExpectRole {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ExpectRole::Solo => 0u8.encode(buf),
            ExpectRole::Low { partner } => {
                1u8.encode(buf);
                partner.encode(buf);
            }
            ExpectRole::High { partner } => {
                2u8.encode(buf);
                partner.encode(buf);
            }
        }
    }
}

impl Decode for ExpectRole {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => ExpectRole::Solo,
            1 => ExpectRole::Low {
                partner: usize::decode(buf)?,
            },
            2 => ExpectRole::High {
                partner: usize::decode(buf)?,
            },
            _ => return None,
        })
    }
}

/// One command from the controller to a shard worker. See the module docs
/// for the protocol each variant participates in.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardCmd {
    /// Replace the worker's stripe: shard index, within-stripe bit count,
    /// and the amplitudes (empty for inactive workers).
    Load {
        /// This worker's shard index among the active shards.
        shard_index: usize,
        /// Number of index bits addressing within the stripe.
        local_bits: usize,
        /// The stripe's amplitudes.
        amps: Vec<Complex>,
    },
    /// Reply with the current stripe ([`ShardReply::Amps`]).
    Gather,
    /// A framed gate stream: execute the ops front to back. This is the
    /// whole point of the batched path — one command message carries every
    /// move this worker performs for an entire [`qsim::GateBatch`].
    Batch {
        /// The worker's share of the planned gate stream, in global gate
        /// order.
        ops: Vec<WorkerOp>,
    },
    /// A coalesced gate stream: several ranks' planned sub-streams shipped
    /// as one command round. Each segment is `(rank, ops)`; the worker
    /// executes segments front to back, which reproduces the exact op order
    /// of shipping each segment as its own [`ShardCmd::Batch`]. Segment
    /// boundaries are kept on the wire (rather than pre-concatenated) so
    /// the failover log can replay the per-rank structure verbatim.
    ///
    /// The wire framing is deliberately compact — u32 segment count, u16
    /// rank marker, u32 op count per segment — so a merged frame always
    /// costs fewer bytes than the per-rank `Batch` frames it replaces.
    /// The controller falls back to a plain concatenated `Batch` for the
    /// (unreachable in any supported deployment) case of a contributing
    /// rank id beyond `u16::MAX`.
    Merged {
        /// Per-rank `(rank, ops)` segments in deterministic arrival order.
        segs: Vec<(u16, Vec<WorkerOp>)>,
    },
    /// Distributed Pauli expectation: accumulate this stripe's
    /// contribution (see [`ExpectRole`] for the pairing protocol) against
    /// the global X/Z masks. Replies [`ShardReply::PartialC`] (except for
    /// the `High` role, which only ships its stripe to its partner).
    Expect {
        /// Within-stripe X mask (bit positions `< local_bits`).
        x_lo: usize,
        /// Shard-selecting X mask in *global* bit positions.
        x_hi: usize,
        /// Global Z mask.
        z_mask: usize,
        /// This worker's role in the evaluation.
        role: ExpectRole,
    },
    /// Reply with the stripe's probability mass where the global index
    /// matches `want` under `mask` ([`ShardReply::Partial`]).
    Prob {
        /// Global index mask.
        mask: usize,
        /// Required masked value.
        want: usize,
    },
    /// Reply with the stripe's odd-parity probability mass under `mask`.
    ParityProb {
        /// Global parity mask.
        mask: usize,
    },
    /// Zero amplitudes not matching `want` under `mask`; reply with the
    /// kept mass (collapse phase of a projective measurement).
    Collapse {
        /// Global index mask.
        mask: usize,
        /// Masked value of the surviving subspace.
        want: usize,
    },
    /// Parity collapse: keep the `want_odd` subspace, reply with kept mass.
    CollapseParity {
        /// Global parity mask.
        mask: usize,
        /// Which parity survives.
        want_odd: bool,
    },
    /// Rescale every amplitude (renormalization after a collapse).
    Scale {
        /// Real scale factor.
        factor: f64,
    },
    /// Exit the event loop cleanly (sent by the engine's destructor).
    Shutdown,
    /// Exit the event loop *without* completing the protocol — a test hook
    /// for exercising the deadlock watchdog (a worker that dies mid-run).
    Die,
}

impl Encode for ShardCmd {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ShardCmd::Load {
                shard_index,
                local_bits,
                amps,
            } => {
                0u8.encode(buf);
                shard_index.encode(buf);
                local_bits.encode(buf);
                encode_amps(amps, buf);
            }
            ShardCmd::Gather => 1u8.encode(buf),
            ShardCmd::Batch { ops } => {
                2u8.encode(buf);
                ops.encode(buf);
            }
            ShardCmd::Expect {
                x_lo,
                x_hi,
                z_mask,
                role,
            } => {
                3u8.encode(buf);
                x_lo.encode(buf);
                x_hi.encode(buf);
                z_mask.encode(buf);
                role.encode(buf);
            }
            ShardCmd::Prob { mask, want } => {
                4u8.encode(buf);
                mask.encode(buf);
                want.encode(buf);
            }
            ShardCmd::ParityProb { mask } => {
                5u8.encode(buf);
                mask.encode(buf);
            }
            ShardCmd::Collapse { mask, want } => {
                6u8.encode(buf);
                mask.encode(buf);
                want.encode(buf);
            }
            ShardCmd::CollapseParity { mask, want_odd } => {
                7u8.encode(buf);
                mask.encode(buf);
                want_odd.encode(buf);
            }
            ShardCmd::Scale { factor } => {
                8u8.encode(buf);
                factor.encode(buf);
            }
            ShardCmd::Shutdown => 9u8.encode(buf),
            ShardCmd::Die => 10u8.encode(buf),
            ShardCmd::Merged { segs } => {
                11u8.encode(buf);
                (segs.len() as u32).encode(buf);
                for (rank, ops) in segs {
                    rank.encode(buf);
                    (ops.len() as u32).encode(buf);
                    for op in ops {
                        op.encode(buf);
                    }
                }
            }
        }
    }
}

impl Decode for ShardCmd {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => ShardCmd::Load {
                shard_index: usize::decode(buf)?,
                local_bits: usize::decode(buf)?,
                amps: decode_amps(buf)?,
            },
            1 => ShardCmd::Gather,
            2 => ShardCmd::Batch {
                ops: Vec::<WorkerOp>::decode(buf)?,
            },
            3 => ShardCmd::Expect {
                x_lo: usize::decode(buf)?,
                x_hi: usize::decode(buf)?,
                z_mask: usize::decode(buf)?,
                role: ExpectRole::decode(buf)?,
            },
            4 => ShardCmd::Prob {
                mask: usize::decode(buf)?,
                want: usize::decode(buf)?,
            },
            5 => ShardCmd::ParityProb {
                mask: usize::decode(buf)?,
            },
            6 => ShardCmd::Collapse {
                mask: usize::decode(buf)?,
                want: usize::decode(buf)?,
            },
            7 => ShardCmd::CollapseParity {
                mask: usize::decode(buf)?,
                want_odd: bool::decode(buf)?,
            },
            8 => ShardCmd::Scale {
                factor: f64::decode(buf)?,
            },
            9 => ShardCmd::Shutdown,
            10 => ShardCmd::Die,
            11 => {
                use bytes::Buf;
                let n = u32::decode(buf)? as usize;
                // Each segment needs at least its 6 marker bytes.
                if n.saturating_mul(6) > buf.remaining() {
                    return None;
                }
                let mut segs = Vec::with_capacity(n);
                for _ in 0..n {
                    let rank = u16::decode(buf)?;
                    let len = u32::decode(buf)? as usize;
                    // Guard against corrupted op counts (each op >= 1 byte).
                    if len > buf.remaining() {
                        return None;
                    }
                    let mut ops = Vec::with_capacity(len);
                    for _ in 0..len {
                        ops.push(WorkerOp::decode(buf)?);
                    }
                    segs.push((rank, ops));
                }
                ShardCmd::Merged { segs }
            }
            _ => return None,
        })
    }
}

/// One reply from a shard worker to the controller.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardReply {
    /// A partial reduction value (probability mass, kept norm).
    Partial(f64),
    /// The worker's stripe (gather).
    Amps(Vec<Complex>),
    /// A complex partial accumulator (distributed Pauli expectations).
    PartialC(Complex),
}

impl Encode for ShardReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ShardReply::Partial(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            ShardReply::Amps(amps) => {
                1u8.encode(buf);
                encode_amps(amps, buf);
            }
            ShardReply::PartialC(c) => {
                2u8.encode(buf);
                encode_complex(c, buf);
            }
        }
    }
}

impl Decode for ShardReply {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => f64::decode(buf).map(ShardReply::Partial),
            1 => decode_amps(buf).map(ShardReply::Amps),
            2 => decode_complex(buf).map(ShardReply::PartialC),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker event loop
// ---------------------------------------------------------------------------

/// Why a worker's event loop (or one blocking wait inside it) ends early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum WorkerHalt {
    /// The session is over: the controller hung up, a peer is unreachable,
    /// or a watchdog expired. The worker exits its loop.
    Exit,
    /// A failover abort: the controller declared a new epoch mid-protocol.
    /// The worker abandons the in-flight batch and returns to the command
    /// loop; its (possibly half-updated) stripe is overwritten by the
    /// recovery `Load`.
    Aborted,
}

/// The transport a shard worker's event loop runs over. The in-process
/// implementation is a cmpi mailbox ([`ThreadChannel`]); the multi-process
/// one is a framed socket to the controller, with worker↔worker exchanges
/// relayed through the controller's router threads
/// (`super::remote_transport::SockChannel`). [`worker_loop`] is generic
/// over this trait, so both transports execute the identical stripe
/// kernels in the identical order — the substance of the bit-identity
/// guarantee across `TransportKind`s.
pub(crate) trait ShardChannel {
    /// Next command from the controller; `None` means the controller hung
    /// up and the worker should exit.
    fn recv_cmd(&mut self) -> Option<ShardCmd>;
    /// Ship a reply to the controller.
    fn send_reply(&mut self, reply: &ShardReply) -> Result<(), WorkerHalt>;
    /// Ship stripe amplitudes to the exchange partner (a world rank).
    fn send_xchg(&mut self, partner: usize, amps: Vec<Complex>) -> Result<(), WorkerHalt>;
    /// Await stripe amplitudes from the exchange partner, bounded by the
    /// watchdog. `what` names the awaited payload for diagnostics.
    fn recv_xchg(&mut self, partner: usize, what: &str) -> Result<Vec<Complex>, WorkerHalt>;
}

/// Executes one gate-stream op against the owned stripe. Ops arrive inside
/// `ShardCmd::Batch` frames; every worker walks its frame in the same
/// global gate order, so cross-shard exchanges pair up without any further
/// coordination.
fn run_op<C: ShardChannel>(
    chan: &mut C,
    amps: &mut Vec<Complex>,
    op: WorkerOp,
) -> Result<(), WorkerHalt> {
    match op {
        WorkerOp::PairWithin { c_lo, tbit, kernel } => {
            kernel.apply_within(amps, c_lo, tbit);
        }
        WorkerOp::CrossLow {
            partner,
            c_lo,
            kernel,
        } => {
            let mut b = chan.recv_xchg(partner, "its stripe half")?;
            kernel.apply_across(amps, &mut b, c_lo);
            chan.send_xchg(partner, b)?;
        }
        WorkerOp::CrossHigh { partner } => {
            let own = std::mem::take(amps);
            chan.send_xchg(partner, own)?;
            *amps = chan.recv_xchg(partner, "the updated stripe half")?;
        }
        WorkerOp::Phase { lo_mask } => stripe::phase_flip(amps, lo_mask),
        WorkerOp::SwapWithin { abit, bbit } => stripe::swap_within(amps, abit, bbit),
        WorkerOp::SwapCrossLow { partner, abit } => {
            let mut b = chan.recv_xchg(partner, "its stripe half")?;
            stripe::swap_across_mixed(amps, &mut b, abit);
            chan.send_xchg(partner, b)?;
        }
        WorkerOp::SwapFull { partner } => {
            // Both members run this op; buffered sends let each post its
            // stripe before blocking on the partner's.
            let own = std::mem::take(amps);
            chan.send_xchg(partner, own)?;
            *amps = chan.recv_xchg(partner, "its full stripe")?;
        }
        WorkerOp::PhaseSweep { diags, flips } => {
            // Masks arrive pre-localized (shard-constant factors as
            // `(0, c, c)`), so base 0 runs the dense engine's exact
            // per-amplitude sequence on the local offsets.
            stripe::phase_sweep(amps, 0, &diags, &flips);
        }
    }
    Ok(())
}

/// The event loop each shard worker runs, generic over its transport:
/// receive one [`ShardCmd`], execute it against the owned stripe, loop
/// until shutdown. Commands arrive in the controller's global send order
/// (FIFO per sender on both transports), so the stripe observes one
/// consistent history.
pub(crate) fn worker_loop<C: ShardChannel>(chan: &mut C) {
    let mut amps: Vec<Complex> = Vec::new();
    let mut base: usize = 0;
    loop {
        let Some(cmd) = chan.recv_cmd() else { return };
        match cmd {
            ShardCmd::Load {
                shard_index,
                local_bits,
                amps: stripe_amps,
            } => {
                base = shard_index << local_bits;
                amps = stripe_amps;
            }
            ShardCmd::Gather => {
                if chan.send_reply(&ShardReply::Amps(amps.clone())).is_err() {
                    return;
                }
            }
            ShardCmd::Batch { ops } => {
                for op in ops {
                    match run_op(chan, &mut amps, op) {
                        Ok(()) => {}
                        // The abandoned batch leaves the stripe half
                        // updated; the recovery Load overwrites it before
                        // any further op can observe it.
                        Err(WorkerHalt::Aborted) => break,
                        Err(WorkerHalt::Exit) => return,
                    }
                }
            }
            ShardCmd::Merged { segs } => {
                // Segments run front to back, exactly as if each had
                // arrived as its own `Batch` command. An abort abandons the
                // *whole* merged frame (every remaining segment), matching
                // the single-frame recovery contract: the recovery Load
                // overwrites the stripe before anything observes it.
                'merged: for (_rank, ops) in segs {
                    for op in ops {
                        match run_op(chan, &mut amps, op) {
                            Ok(()) => {}
                            Err(WorkerHalt::Aborted) => break 'merged,
                            Err(WorkerHalt::Exit) => return,
                        }
                    }
                }
            }
            ShardCmd::Expect {
                x_lo,
                x_hi,
                z_mask,
                role,
            } => match role {
                ExpectRole::Solo => {
                    // x never leaves the stripe: the partner amplitude of
                    // offset `i` sits at `i ^ x_lo` locally.
                    let at = |g: usize| amps[g & (amps.len() - 1)];
                    let mut acc = Complex::default();
                    for i in 0..amps.len() {
                        if let Some(t) =
                            stripe::expectation_term(&|o| at(o), base | i, x_lo, z_mask)
                        {
                            acc += t;
                        }
                    }
                    if chan.send_reply(&ShardReply::PartialC(acc)).is_err() {
                        return;
                    }
                }
                ExpectRole::High { partner } => {
                    // Ship the stripe; the low member accumulates for both.
                    if chan.send_xchg(partner, amps.clone()).is_err() {
                        return;
                    }
                }
                ExpectRole::Low { partner } => {
                    let b = match chan.recv_xchg(partner, "its stripe for the expectation") {
                        Ok(b) => b,
                        Err(WorkerHalt::Aborted) => continue,
                        Err(WorkerHalt::Exit) => return,
                    };
                    let partner_base = base ^ x_hi;
                    let mut acc = Complex::default();
                    // Own-stripe terms: partner amplitude lives in `b` at
                    // offset `i ^ x_lo` (x_hi flips exactly the partner's
                    // shard bits).
                    for (i, &a) in amps.iter().enumerate() {
                        let own = a;
                        let at = |g: usize| {
                            if g == (base | i) {
                                own
                            } else {
                                b[i ^ x_lo]
                            }
                        };
                        if let Some(t) =
                            stripe::expectation_term(&at, base | i, x_lo | x_hi, z_mask)
                        {
                            acc += t;
                        }
                    }
                    // Partner-stripe terms: its partner amplitudes live
                    // here.
                    for (i, &a) in b.iter().enumerate() {
                        let their = a;
                        let at = |g: usize| {
                            if g == (partner_base | i) {
                                their
                            } else {
                                amps[i ^ x_lo]
                            }
                        };
                        if let Some(t) =
                            stripe::expectation_term(&at, partner_base | i, x_lo | x_hi, z_mask)
                        {
                            acc += t;
                        }
                    }
                    if chan.send_reply(&ShardReply::PartialC(acc)).is_err() {
                        return;
                    }
                }
            },
            ShardCmd::Prob { mask, want } => {
                let p = stripe::masked_norm(&amps, base, mask, want);
                if chan.send_reply(&ShardReply::Partial(p)).is_err() {
                    return;
                }
            }
            ShardCmd::ParityProb { mask } => {
                let p = stripe::parity_prob_odd(&amps, base, mask);
                if chan.send_reply(&ShardReply::Partial(p)).is_err() {
                    return;
                }
            }
            ShardCmd::Collapse { mask, want } => {
                let kept = stripe::collapse_keep(&mut amps, base, mask, want);
                if chan.send_reply(&ShardReply::Partial(kept)).is_err() {
                    return;
                }
            }
            ShardCmd::CollapseParity { mask, want_odd } => {
                let kept = stripe::collapse_parity(&mut amps, base, mask, want_odd);
                if chan.send_reply(&ShardReply::Partial(kept)).is_err() {
                    return;
                }
            }
            ShardCmd::Scale { factor } => stripe::scale(&mut amps, factor),
            ShardCmd::Shutdown | ShardCmd::Die => return,
        }
    }
}

/// The in-process transport: a cmpi mailbox endpoint inside the engine's
/// private worker world. Exchange waits are bounded by the shared watchdog
/// and *panic* on expiry (the historical diagnose-don't-hang contract for
/// thread workers, asserted by the watchdog tests).
pub(crate) struct ThreadChannel {
    comm: Communicator,
    watchdog: Arc<AtomicU64>,
}

impl ShardChannel for ThreadChannel {
    fn recv_cmd(&mut self) -> Option<ShardCmd> {
        let (cmd, _) = self.comm.recv::<ShardCmd>(CONTROLLER, TAG_CMD);
        Some(cmd)
    }

    fn send_reply(&mut self, reply: &ShardReply) -> Result<(), WorkerHalt> {
        self.comm.send(reply, CONTROLLER, TAG_REPLY);
        Ok(())
    }

    fn send_xchg(&mut self, partner: usize, amps: Vec<Complex>) -> Result<(), WorkerHalt> {
        self.comm.send(&WireAmps(amps), partner, TAG_XCHG);
        Ok(())
    }

    fn recv_xchg(&mut self, partner: usize, what: &str) -> Result<Vec<Complex>, WorkerHalt> {
        let wd = Duration::from_millis(self.watchdog.load(Ordering::Relaxed));
        match self.comm.recv_timeout::<WireAmps>(partner, TAG_XCHG, wd) {
            Some((w, _)) => Ok(w.0),
            None => panic!(
                "remote-shard watchdog: worker {} waited {wd:?} for {what} from \
                 partner {partner}; the partner is presumed dead or deadlocked",
                self.comm.rank()
            ),
        }
    }
}

/// The mailbox-driven shard worker: [`worker_loop`] over a
/// [`ThreadChannel`] (the in-process transport).
fn shard_worker(comm: Communicator, watchdog: Arc<AtomicU64>) {
    let mut chan = ThreadChannel { comm, watchdog };
    worker_loop(&mut chan);
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Marker error: a worker's OS process died (connection EOF, write
/// failure, or reply timeout) under a multi-process link. In-process links
/// never produce it — their failures keep the historical
/// panic-with-diagnostic behavior. Reaching [`Controller::run`] with this
/// triggers failover: respawn, checkpoint re-scatter, log replay.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeadWorker;

/// One committed retry unit in the failover log: the mutating commands it
/// sent (by shard) and the per-shard replies it drained, in order. Replay
/// re-sends the former and discards the latter.
#[derive(Clone, Default)]
struct LoggedUnit {
    sends: Vec<(usize, ShardCmd)>,
    drains: Vec<usize>,
}

impl LoggedUnit {
    /// Whether any recorded command mutates worker state (and therefore
    /// must be replayed after a checkpoint reload). Read-only fan-outs
    /// (probes, gathers, expectations) re-derive nothing and are dropped.
    fn is_mutating(&self) -> bool {
        self.sends.iter().any(|(_, cmd)| {
            matches!(
                cmd,
                ShardCmd::Batch { .. }
                    | ShardCmd::Merged { .. }
                    | ShardCmd::Load { .. }
                    | ShardCmd::Collapse { .. }
                    | ShardCmd::CollapseParity { .. }
                    | ShardCmd::Scale { .. }
            )
        })
    }
}

/// Controller-side failover state, present only on multi-process links (an
/// in-process engine pays zero overhead for it). Invariant: *checkpoint +
/// log ≡ the state as of the last committed retry unit*, so recovery is
/// always "reload checkpoint, replay log" — a failed unit's partial
/// effects are erased by the reload and the unit is retried whole.
struct FailoverState {
    /// Last checkpointed dense state (refreshed by every scatter, every
    /// whole-state gather, and the periodic forced checkpoint).
    checkpoint: Vec<Complex>,
    /// Qubit count the checkpoint was taken at.
    ckpt_qubits: usize,
    /// Mutating units committed since the checkpoint, in order.
    log: Vec<LoggedUnit>,
    /// The currently open (uncommitted) unit, if any.
    unit: Option<LoggedUnit>,
    /// Forced-checkpoint threshold: once the log holds this many units,
    /// commit gathers a fresh checkpoint and clears it, bounding replay
    /// cost after a crash.
    limit: usize,
}

impl FailoverState {
    fn new() -> Self {
        let limit = std::env::var("QMPI_CHECKPOINT_ROUNDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(32);
        FailoverState {
            checkpoint: vec![Complex::real(1.0)],
            ckpt_qubits: 0,
            log: Vec::new(),
            unit: None,
            limit,
        }
    }
}

/// The controller half of the shard protocol: the worker link plus the
/// shard layout bookkeeping. All sends for one logical operation happen
/// while the engine holds the controller lock, so every worker sees
/// commands in the same global order.
struct Controller {
    /// The worker world this controller drives: privately spawned threads
    /// (owned, shut down on engine drop), leased from a [`ShardWorkerPool`]
    /// (returned, still running, on engine drop), or child processes
    /// behind a socket transport.
    link: WorkerLink,
    /// Watchdog in milliseconds, shared with every worker's exchange waits
    /// so [`RemoteShardedEngine::with_watchdog`] reaches both sides.
    watchdog: Arc<AtomicU64>,
    /// Live qubit positions (mirrors the registry length).
    n_qubits: usize,
    /// Active shard-index bits: `min(max_shard_bits, n_qubits)`.
    shard_bits: u32,
    /// Configured shard-count exponent.
    max_shard_bits: u32,
    /// Controller→worker command rounds issued (one per fan-out of command
    /// frames, whether the frames carry one gate or a whole batch). The
    /// batched-vs-eager acceptance tests read this.
    cmd_rounds: u64,
    /// Worker↔worker stripe-exchange rounds set up by dispatched plans
    /// (one per cross-shard op — the irreducible data motion).
    xchg_rounds: u64,
    /// Checkpoint + replay state; `Some` exactly for multi-process links.
    failover: Option<FailoverState>,
}

/// A planned gate stream: every participating worker's `WorkerOp` list (in
/// global gate order) plus the exchange-round tally. Built gate by gate,
/// dispatched as one [`ShardCmd::Batch`] frame per worker.
struct Plan {
    ops: Vec<Vec<WorkerOp>>,
    xchg: u64,
}

/// How a [`Controller`] came by its worker world.
enum WorkerLink {
    /// Workers spawned privately for this engine; the engine owns their
    /// shutdown and thread joins.
    Owned {
        comm: Communicator,
        group: Option<WorkerGroup>,
    },
    /// Workers leased from a [`ShardWorkerPool`]; dropping the lease
    /// returns them — still running their event loop — to the pool.
    Leased(WorkerLease),
    /// Workers running as child processes behind a socket transport
    /// (possibly pooled; the handle returns pooled links on drop).
    /// Boxed: the handle dwarfs the thread-backed variants.
    Process(Box<ProcessHandle>),
}

impl WorkerLink {
    /// The in-process controller communicator. Only thread-backed links
    /// have one; the socket transport speaks frames, not mailboxes.
    /// (Test-only: lets tests count substrate messages directly.)
    #[cfg(test)]
    fn comm(&self) -> &Communicator {
        match self {
            WorkerLink::Owned { comm, .. } => comm,
            WorkerLink::Leased(lease) => lease.comm(),
            WorkerLink::Process(_) => {
                panic!("a multi-process worker link has no in-process communicator")
            }
        }
    }
}

impl Controller {
    /// Total worker count (`2^k`).
    fn workers(&self) -> usize {
        1 << self.max_shard_bits
    }

    /// The controller-side communicator of the worker world (test-only;
    /// panics for the multi-process link, which has no communicator).
    #[cfg(test)]
    fn comm(&self) -> &Communicator {
        self.link.comm()
    }

    /// Currently active shard count (`2^min(k, n)`).
    fn active(&self) -> usize {
        1 << self.shard_bits
    }

    /// Index bits addressing within a stripe.
    fn local_bits(&self) -> usize {
        self.n_qubits - self.shard_bits as usize
    }

    /// World rank of shard `s`'s worker.
    fn rank_of(&self, shard: usize) -> usize {
        shard + 1
    }

    /// Raw command send: straight to the wire/mailbox, no unit recording.
    /// Recovery and checkpoint traffic uses this directly.
    fn send_raw(&mut self, shard: usize, cmd: &ShardCmd) -> Result<(), DeadWorker> {
        let rank = self.rank_of(shard);
        match &mut self.link {
            WorkerLink::Owned { comm, .. } => {
                comm.send(cmd, rank, TAG_CMD);
                Ok(())
            }
            WorkerLink::Leased(lease) => {
                lease.comm().send(cmd, rank, TAG_CMD);
                Ok(())
            }
            WorkerLink::Process(h) => h.link().send_cmd(shard, cmd),
        }
    }

    /// Sends one command to shard `shard`, recording it into the open
    /// retry unit (if failover is armed) so a crash can replay it.
    fn send_to(&mut self, shard: usize, cmd: &ShardCmd) -> Result<(), DeadWorker> {
        if let Some(unit) = self.failover.as_mut().and_then(|f| f.unit.as_mut()) {
            unit.sends.push((shard, cmd.clone()));
        }
        self.send_raw(shard, cmd)
    }

    /// The current watchdog duration.
    fn watchdog(&self) -> Duration {
        Duration::from_millis(self.watchdog.load(Ordering::Relaxed))
    }

    /// Raw reply receive, no unit recording. In-process links keep the
    /// historical contract: watchdog expiry panics with a diagnostic.
    /// Process links report a dead worker instead, and failover handles it.
    fn reply_raw(&mut self, shard: usize, what: &str) -> Result<ShardReply, DeadWorker> {
        let wd = self.watchdog();
        let rank = self.rank_of(shard);
        let comm = match &mut self.link {
            WorkerLink::Owned { comm, .. } => comm,
            WorkerLink::Leased(lease) => lease.comm(),
            WorkerLink::Process(h) => return h.link().reply_from(shard, wd),
        };
        match comm.recv_timeout::<ShardReply>(rank, TAG_REPLY, wd) {
            Some((r, _)) => Ok(r),
            None => panic!(
                "remote-shard watchdog: no {what} reply from shard {shard}'s worker within \
                 {wd:?}; the worker is presumed dead or deadlocked"
            ),
        }
    }

    /// Receives shard `s`'s reply, recording the drain into the open retry
    /// unit (replay must consume replayed replies in the same pattern).
    fn reply_from(&mut self, shard: usize, what: &str) -> Result<ShardReply, DeadWorker> {
        let reply = self.reply_raw(shard, what)?;
        if let Some(unit) = self.failover.as_mut().and_then(|f| f.unit.as_mut()) {
            unit.drains.push(shard);
        }
        Ok(reply)
    }

    fn partial_from(&mut self, shard: usize, what: &str) -> Result<f64, DeadWorker> {
        match self.reply_from(shard, what)? {
            ShardReply::Partial(v) => Ok(v),
            other => panic!("shard {shard} sent {other:?} where a partial was expected"),
        }
    }

    /// Fans a query command out to every active shard and sums the partial
    /// replies in shard order.
    fn reduce_partials(&mut self, cmd: &ShardCmd, what: &str) -> Result<f64, DeadWorker> {
        self.cmd_rounds += 1;
        for s in 0..self.active() {
            self.send_to(s, cmd)?;
        }
        let mut sum = 0.0;
        for s in 0..self.active() {
            sum += self.partial_from(s, what)?;
        }
        Ok(sum)
    }

    /// Uncounted, unrecorded whole-state gather (shards are contiguous
    /// global index ranges, so this is an append in shard order).
    /// Non-destructive: workers keep their stripes.
    fn gather_raw(&mut self) -> Result<Vec<Complex>, DeadWorker> {
        for s in 0..self.active() {
            self.send_raw(s, &ShardCmd::Gather)?;
        }
        let mut flat = Vec::with_capacity(1usize << self.n_qubits);
        for s in 0..self.active() {
            match self.reply_raw(s, "gather")? {
                ShardReply::Amps(a) => flat.extend(a),
                other => panic!("shard {s} sent {other:?} where a stripe was expected"),
            }
        }
        Ok(flat)
    }

    /// Gathers the dense state, retrying through failover until it
    /// succeeds. A successful gather IS a checkpoint — the freshest one
    /// possible — so failover state is refreshed for free.
    fn run_gather(&mut self) -> Vec<Complex> {
        self.cmd_rounds += 1;
        if self.failover.is_none() {
            return self
                .gather_raw()
                .unwrap_or_else(|_| unreachable!("in-process links never report dead workers"));
        }
        loop {
            match self.gather_raw() {
                Ok(flat) => {
                    let n = self.n_qubits;
                    let f = self.failover.as_mut().expect("checked above");
                    f.checkpoint = flat.clone();
                    f.ckpt_qubits = n;
                    f.log.clear();
                    return flat;
                }
                Err(DeadWorker) => self.recover(),
            }
        }
    }

    /// Uncounted, unrecorded scatter: recomputes the shard layout for
    /// `n_qubits` and distributes `flat` across the workers (inactive
    /// workers get an empty stripe).
    fn scatter_raw(&mut self, mut flat: Vec<Complex>, n_qubits: usize) -> Result<(), DeadWorker> {
        debug_assert_eq!(flat.len(), 1usize << n_qubits);
        self.n_qubits = n_qubits;
        self.shard_bits = self.max_shard_bits.min(n_qubits as u32);
        let local_bits = self.local_bits();
        let len = flat.len() >> self.shard_bits;
        for s in 0..self.workers() {
            let amps = if s < self.active() {
                let rest = flat.split_off(len);
                std::mem::replace(&mut flat, rest)
            } else {
                Vec::new()
            };
            self.send_raw(
                s,
                &ShardCmd::Load {
                    shard_index: s,
                    local_bits,
                    amps,
                },
            )?;
        }
        Ok(())
    }

    /// Scatters a new dense state, surviving worker death. The scatter
    /// itself becomes the checkpoint *before* any frame is sent — a `Load`
    /// overwrites whole stripes, so recovery's checkpoint reload simply
    /// re-does the scatter. The failover log is cleared: nothing before a
    /// full-state scatter needs replaying.
    fn run_scatter(&mut self, flat: Vec<Complex>, n_qubits: usize) {
        self.cmd_rounds += 1;
        if self.failover.is_some() {
            let f = self.failover.as_mut().expect("checked above");
            f.checkpoint = flat.clone();
            f.ckpt_qubits = n_qubits;
            f.log.clear();
            if self.scatter_raw(flat, n_qubits).is_err() {
                // recover() reloads the just-refreshed checkpoint, which
                // re-performs this very scatter.
                self.recover();
            }
        } else {
            self.scatter_raw(flat, n_qubits)
                .unwrap_or_else(|_| unreachable!("in-process links never report dead workers"));
        }
    }

    /// Runs one retry unit to completion. For in-process links this is a
    /// plain call (failures panic inside, never return `Err`). For process
    /// links the unit body is recorded; on worker death the generation is
    /// restarted (respawn + checkpoint reload + log replay) and the unit
    /// retried from scratch. The closure must therefore be free of
    /// external side effects — in particular it must not draw RNG, which
    /// the engine keeps outside units precisely so trajectories stay
    /// bit-identical across failovers.
    fn run<T>(&mut self, mut f: impl FnMut(&mut Controller) -> Result<T, DeadWorker>) -> T {
        if self.failover.is_none() {
            return f(self)
                .unwrap_or_else(|_| unreachable!("in-process links never report dead workers"));
        }
        loop {
            if let Some(fo) = self.failover.as_mut() {
                fo.unit = Some(LoggedUnit::default());
            }
            match f(self) {
                Ok(v) => {
                    self.commit_unit();
                    return v;
                }
                Err(DeadWorker) => {
                    if let Some(fo) = self.failover.as_mut() {
                        fo.unit = None;
                    }
                    self.recover();
                }
            }
        }
    }

    /// Commits the open unit: mutating units enter the replay log;
    /// read-only ones vanish. A log at its limit is compacted into a fresh
    /// checkpoint so replay cost stays bounded.
    fn commit_unit(&mut self) {
        let needs_checkpoint = {
            let Some(f) = self.failover.as_mut() else {
                return;
            };
            if let Some(unit) = f.unit.take() {
                if unit.is_mutating() {
                    f.log.push(unit);
                }
            }
            f.log.len() >= f.limit
        };
        if needs_checkpoint {
            self.checkpoint_now();
        }
    }

    /// Forces a checkpoint: gathers the dense state (uncounted — this is
    /// bookkeeping, not protocol traffic the round counters should see)
    /// and clears the log, retrying through failover as needed.
    fn checkpoint_now(&mut self) {
        loop {
            match self.gather_raw() {
                Ok(flat) => {
                    let n = self.n_qubits;
                    let f = self
                        .failover
                        .as_mut()
                        .expect("checkpointing requires failover state");
                    f.checkpoint = flat;
                    f.ckpt_qubits = n;
                    f.log.clear();
                    return;
                }
                Err(DeadWorker) => self.recover(),
            }
        }
    }

    /// Failover: restart the worker generation (respawn the dead, abort
    /// the live into the new epoch), reload the checkpoint, replay the
    /// committed log. Loops until a full generation survives the whole
    /// sequence; panics if workers keep dying past the respawn budget.
    fn recover(&mut self) {
        let wd = self.watchdog();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            assert!(
                attempts <= 16,
                "remote-shard failover: respawn budget exhausted — workers keep dying during \
                 recovery"
            );
            {
                let WorkerLink::Process(h) = &mut self.link else {
                    unreachable!("only multi-process links report dead workers")
                };
                if h.link().restart_generation(wd).is_err() {
                    continue;
                }
            }
            if self.replay().is_ok() {
                return;
            }
        }
    }

    /// Reloads the checkpoint and replays every committed unit against the
    /// fresh generation: re-send the logged commands in order, drain (and
    /// discard) the replies they provoke.
    fn replay(&mut self) -> Result<(), DeadWorker> {
        let (flat, n, log) = {
            let f = self
                .failover
                .as_ref()
                .expect("recovery requires failover state");
            (f.checkpoint.clone(), f.ckpt_qubits, f.log.clone())
        };
        self.scatter_raw(flat, n)?;
        for unit in &log {
            for (s, cmd) in &unit.sends {
                self.send_raw(*s, cmd)?;
            }
            for &s in &unit.drains {
                self.reply_raw(s, "replayed reply")?;
            }
        }
        Ok(())
    }

    /// Splits a set of global qubit positions into (within-stripe,
    /// shard-index) masks.
    fn split_masks(&self, positions: &[usize]) -> (usize, usize) {
        let l = self.local_bits();
        let mut lo = 0usize;
        let mut hi = 0usize;
        for &p in positions {
            assert!(p < self.n_qubits, "position {p} out of range");
            if p < l {
                lo |= 1 << p;
            } else {
                hi |= 1 << (p - l);
            }
        }
        (lo, hi)
    }

    /// An empty plan sized to the active shard set.
    fn new_plan(&self) -> Plan {
        Plan {
            ops: vec![Vec::new(); self.active()],
            xchg: 0,
        }
    }

    /// Plans one pair gate into `plan`: within-shard targets get a local
    /// pass, cross-shard targets get the stripe-pair exchange ops.
    fn plan_pair(
        &self,
        c_lo: usize,
        c_hi: usize,
        target: usize,
        kernel: PairKernel,
        plan: &mut Plan,
    ) {
        let l = self.local_bits();
        if target < l {
            let tbit = 1usize << target;
            for s in 0..self.active() {
                if s & c_hi == c_hi {
                    plan.ops[s].push(WorkerOp::PairWithin { c_lo, tbit, kernel });
                }
            }
        } else {
            let tbit = 1usize << (target - l);
            for s0 in 0..self.active() {
                if s0 & tbit != 0 || s0 & c_hi != c_hi {
                    continue;
                }
                let s1 = s0 | tbit;
                plan.ops[s0].push(WorkerOp::CrossLow {
                    partner: self.rank_of(s1),
                    c_lo,
                    kernel,
                });
                plan.ops[s1].push(WorkerOp::CrossHigh {
                    partner: self.rank_of(s0),
                });
                plan.xchg += 1;
            }
        }
    }

    /// Plans a diagonal phase pass (CZ) for the matching shards.
    fn plan_phase(&self, lo_mask: usize, hi_mask: usize, plan: &mut Plan) {
        for s in 0..self.active() {
            if s & hi_mask == hi_mask {
                plan.ops[s].push(WorkerOp::Phase { lo_mask });
            }
        }
    }

    /// Plans one merged diagonal sweep for every shard. All sweeps are
    /// shard-local (no exchange): every worker receives the *full* factor
    /// list in plan order — a factor whose qubit is a shard-index bit
    /// arrives as the constant `(0, c, c)` branch that shard lives on —
    /// so each worker's sequential multiply reproduces the dense engine's
    /// floating-point sequence exactly. A CZ flip mask is shipped only to
    /// the shards whose index bits satisfy its high half (`0` = negate the
    /// whole stripe, which is exact).
    fn plan_phase_sweep(
        &self,
        factors: &[(usize, Complex, Complex)],
        flips: &[(usize, usize)],
        plan: &mut Plan,
    ) {
        let l = self.local_bits();
        for s in 0..self.active() {
            let mut diags = Vec::with_capacity(factors.len());
            for &(p, d0, d1) in factors {
                if p < l {
                    diags.push((1usize << p, d0, d1));
                } else {
                    let c = if s & (1usize << (p - l)) != 0 { d1 } else { d0 };
                    diags.push((0, c, c));
                }
            }
            let mut lo_flips = Vec::with_capacity(flips.len());
            for &(a, b) in flips {
                let (lo_mask, hi_mask) = self.split_masks(&[a, b]);
                if s & hi_mask == hi_mask {
                    lo_flips.push(lo_mask);
                }
            }
            if !diags.is_empty() || !lo_flips.is_empty() {
                plan.ops[s].push(WorkerOp::PhaseSweep {
                    diags,
                    flips: lo_flips,
                });
            }
        }
    }

    /// Plans a one-round SWAP of positions `a` and `b` (the stripe-exchange
    /// realization — one exchange per shard pair instead of the three CNOT
    /// passes, 6 transfers, of the naive form).
    fn plan_swap(&self, a: usize, b: usize, plan: &mut Plan) {
        debug_assert_ne!(a, b);
        let l = self.local_bits();
        let (lo, hi) = (a.min(b), a.max(b));
        if hi < l {
            let (abit, bbit) = (1usize << lo, 1usize << hi);
            for s in 0..self.active() {
                plan.ops[s].push(WorkerOp::SwapWithin { abit, bbit });
            }
        } else if lo < l {
            let abit = 1usize << lo;
            let hbit = 1usize << (hi - l);
            for s0 in 0..self.active() {
                if s0 & hbit != 0 {
                    continue;
                }
                let s1 = s0 | hbit;
                plan.ops[s0].push(WorkerOp::SwapCrossLow {
                    partner: self.rank_of(s1),
                    abit,
                });
                plan.ops[s1].push(WorkerOp::CrossHigh {
                    partner: self.rank_of(s0),
                });
                plan.xchg += 1;
            }
        } else {
            let abit = 1usize << (lo - l);
            let bbit = 1usize << (hi - l);
            for s in 0..self.active() {
                if s & abit == 0 || s & bbit != 0 {
                    continue;
                }
                let p = s ^ abit ^ bbit;
                plan.ops[s].push(WorkerOp::SwapFull {
                    partner: self.rank_of(p),
                });
                plan.ops[p].push(WorkerOp::SwapFull {
                    partner: self.rank_of(s),
                });
                plan.xchg += 1;
            }
        }
    }

    /// Ships a plan: one [`ShardCmd::Batch`] frame per participating
    /// worker, counted as a single command round however many gates the
    /// plan carries. No-op (and no round) for an empty plan. Borrows the
    /// plan so a failover retry can ship the identical stream again —
    /// plans may embed noise draws and must never be rebuilt.
    fn dispatch(&mut self, plan: &Plan) -> Result<(), DeadWorker> {
        if plan.ops.iter().all(|ops| ops.is_empty()) {
            return Ok(());
        }
        self.cmd_rounds += 1;
        self.xchg_rounds += plan.xchg;
        for (s, ops) in plan.ops.iter().enumerate() {
            if !ops.is_empty() {
                self.send_to(s, &ShardCmd::Batch { ops: ops.clone() })?;
            }
        }
        Ok(())
    }

    /// Ships a coalesced plan: one frame per participating worker carrying
    /// *several ranks'* planned sub-streams, still counted as a single
    /// command round. `cuts` holds, per contributing rank in arrival order,
    /// the cumulative per-worker end position its segment reached in
    /// `plan.ops` — slicing at those positions recovers each rank's ops.
    /// Workers with exactly one non-empty segment get a plain
    /// [`ShardCmd::Batch`] (identical bytes to the uncoalesced ship); the
    /// rest get [`ShardCmd::Merged`] with the per-rank structure intact so
    /// failover replay preserves it.
    fn dispatch_merged(
        &mut self,
        plan: &Plan,
        cuts: &[(u64, Vec<usize>)],
    ) -> Result<(), DeadWorker> {
        if plan.ops.iter().all(|ops| ops.is_empty()) {
            return Ok(());
        }
        self.cmd_rounds += 1;
        self.xchg_rounds += plan.xchg;
        // Rank markers ride the wire as u16 (see [`ShardCmd::Merged`]);
        // beyond that — unreachable in any supported deployment — the
        // concatenated plain frame keeps execution order and byte parity,
        // giving up only the log's per-rank markers.
        let markers_fit = cuts.iter().all(|(rank, _)| u16::try_from(*rank).is_ok());
        for (s, ops) in plan.ops.iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let mut segs: Vec<(u16, Vec<WorkerOp>)> = Vec::new();
            let mut prev = 0usize;
            for (rank, ends) in cuts {
                let end = ends[s];
                if end > prev {
                    segs.push((*rank as u16, ops[prev..end].to_vec()));
                    prev = end;
                }
            }
            if segs.len() == 1 || !markers_fit {
                self.send_to(s, &ShardCmd::Batch { ops: ops.clone() })?;
            } else {
                self.send_to(s, &ShardCmd::Merged { segs })?;
            }
        }
        Ok(())
    }

    /// Distributed (gather-free) Pauli expectation: fan [`ShardCmd::Expect`]
    /// out with the pairing roles implied by the shard-crossing half of the
    /// X mask, then sum the complex partials in shard order.
    fn expect(&mut self, x_mask: usize, z_mask: usize) -> Result<Complex, DeadWorker> {
        let l = self.local_bits();
        let x_lo = x_mask & ((1usize << l) - 1);
        let x_hi = x_mask & !((1usize << l) - 1);
        self.cmd_rounds += 1;
        let mut reporters = Vec::new();
        if x_hi == 0 {
            for s in 0..self.active() {
                self.send_to(
                    s,
                    &ShardCmd::Expect {
                        x_lo,
                        x_hi,
                        z_mask,
                        role: ExpectRole::Solo,
                    },
                )?;
                reporters.push(s);
            }
        } else {
            let flip = x_hi >> l;
            for s in 0..self.active() {
                let p = s ^ flip;
                let role = if s < p {
                    reporters.push(s);
                    self.xchg_rounds += 1;
                    ExpectRole::Low {
                        partner: self.rank_of(p),
                    }
                } else {
                    ExpectRole::High {
                        partner: self.rank_of(p),
                    }
                };
                self.send_to(
                    s,
                    &ShardCmd::Expect {
                        x_lo,
                        x_hi,
                        z_mask,
                        role,
                    },
                )?;
            }
        }
        let mut acc = Complex::default();
        for s in reporters {
            match self.reply_from(s, "expectation partial")? {
                ShardReply::PartialC(c) => acc += c,
                other => panic!("shard {s} sent {other:?} where a complex partial was expected"),
            }
        }
        Ok(acc)
    }

    /// Two-phase projective collapse onto `want` under `mask`: zero the
    /// complement, reduce the kept mass, broadcast the rescale.
    fn collapse(&mut self, mask: usize, want: usize) -> Result<f64, DeadWorker> {
        let norm = self.reduce_partials(&ShardCmd::Collapse { mask, want }, "collapse")?;
        assert!(norm > 1e-12, "collapsing onto probability-zero outcome");
        let inv = 1.0 / norm.sqrt();
        self.cmd_rounds += 1;
        for s in 0..self.active() {
            self.send_to(s, &ShardCmd::Scale { factor: inv })?;
        }
        Ok(norm)
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Full state-vector engine whose `2^k` amplitude shards live in dedicated
/// worker ranks and exchange nothing but [`cmpi`] messages. See the module
/// docs for the protocol; see [`super::ShardedStateVector`] for the
/// in-process analogue with the same observable semantics.
pub struct RemoteShardedEngine {
    ctl: Mutex<Controller>,
    /// Stable handle <-> position bookkeeping, shared with the other
    /// amplitude engines via [`qsim::registry`].
    reg: QubitRegistry,
    rng: StdRng,
    /// Controller-side noise sampling; same stream seeding as the dense
    /// engine, so single-threaded trajectories are bit-identical.
    noise: Mutex<NoiseState>,
    noise_model: NoiseModel,
    gate_count: AtomicU64,
    measurement_count: u64,
}

impl RemoteShardedEngine {
    /// Spawns the worker ranks for a noiseless engine. `shards` is rounded
    /// up to a power of two and clamped to `[1, 2^MAX_REMOTE_SHARD_BITS]`.
    pub fn new(seed: u64, shards: usize) -> Self {
        RemoteShardedEngine::with_noise(seed, shards, NoiseModel::ideal())
    }

    /// Spawns the worker ranks for an engine applying `noise` as
    /// controller-sampled trajectory insertions.
    ///
    /// This is the spawn-per-engine path: a thin wrapper over the shared
    /// construction routine that owns a freshly spawned worker world.
    /// Engines multiplexed over long-lived workers instead come from
    /// [`RemoteShardedEngine::from_lease`].
    pub fn with_noise(seed: u64, shards: usize, noise: NoiseModel) -> Self {
        let shards = qsim::sharded::normalize_shards(shards, MAX_REMOTE_SHARD_BITS);
        let watchdog = Arc::new(AtomicU64::new(watchdog_from_env().as_millis() as u64));
        let worker_watchdog = Arc::clone(&watchdog);
        let (comm, group) = Universe::spawn_workers(shards, move |c| {
            shard_worker(c, Arc::clone(&worker_watchdog))
        });
        Self::from_parts(
            seed,
            WorkerLink::Owned {
                comm,
                group: Some(group),
            },
            shards,
            noise,
            watchdog,
        )
    }

    /// Builds an engine over a slot leased from a [`ShardWorkerPool`]. The
    /// lease's workers keep running when the engine is dropped; the slot
    /// returns to the pool for the next engine.
    ///
    /// Construction resets the slot: any replies a previous (possibly
    /// panicked) lessee left unread in the controller mailbox are drained,
    /// and the scatter of the fresh scalar state overwrites every worker's
    /// stripe. Per-seed trajectories are therefore bit-identical to an
    /// engine over freshly spawned workers.
    pub fn from_lease(seed: u64, lease: ShardLease, noise: NoiseModel) -> Self {
        let ShardLease {
            lease,
            watchdog,
            shards,
        } = lease;
        while lease
            .comm()
            .irecv::<ShardReply>(SourceSel::Any, TAG_REPLY)
            .test()
            .is_some()
        {}
        Self::from_parts(seed, WorkerLink::Leased(lease), shards, noise, watchdog)
    }

    /// Builds an engine whose workers live behind the given transport:
    /// threads for [`TransportKind::InProcess`] (identical to
    /// [`RemoteShardedEngine::with_noise`]), child processes speaking
    /// framed sockets otherwise — with checkpoint/replay failover armed.
    /// Per-seed trajectories are bit-identical across transports: both run
    /// the same planner, the same kernels, in the same global order.
    pub fn over_transport(
        seed: u64,
        shards: usize,
        noise: NoiseModel,
        kind: TransportKind,
    ) -> Self {
        if !kind.is_multiprocess() {
            return Self::with_noise(seed, shards, noise);
        }
        let shards = qsim::sharded::normalize_shards(shards, MAX_REMOTE_SHARD_BITS);
        let watchdog = Arc::new(AtomicU64::new(watchdog_from_env().as_millis() as u64));
        let link = ProcessLink::spawn(kind, shards, Arc::clone(&watchdog))
            .unwrap_or_else(|e| panic!("cannot spawn {kind} shard worker processes: {e}"));
        Self::from_parts(
            seed,
            WorkerLink::Process(Box::new(ProcessHandle::owned(link))),
            shards,
            noise,
            watchdog,
        )
    }

    /// Builds an engine over a process-worker slot leased from a
    /// [`super::remote_transport::ProcessWorkerPool`]. The lease's child
    /// processes keep running when the engine drops; construction resets
    /// the slot (epoch bump aborts any protocol a panicked previous lessee
    /// left dangling, then the scalar-state scatter overwrites every
    /// stripe), so per-seed trajectories match a freshly spawned engine.
    pub fn from_process_lease(
        seed: u64,
        lease: super::remote_transport::ProcessShardLease,
        noise: NoiseModel,
    ) -> Self {
        let (handle, watchdog, shards) = lease.into_handle();
        Self::from_parts(
            seed,
            WorkerLink::Process(Box::new(handle)),
            shards,
            noise,
            watchdog,
        )
    }

    /// Common construction over an already-running worker world — the seam
    /// between engine semantics and worker lifecycle. `shards` must be the
    /// world's worker count (a power of two).
    fn from_parts(
        seed: u64,
        link: WorkerLink,
        shards: usize,
        noise: NoiseModel,
        watchdog: Arc<AtomicU64>,
    ) -> Self {
        debug_assert!(shards.is_power_of_two());
        let failover = matches!(link, WorkerLink::Process(_)).then(FailoverState::new);
        let mut ctl = Controller {
            link,
            watchdog,
            n_qubits: 0,
            shard_bits: 0,
            max_shard_bits: shards.trailing_zeros(),
            cmd_rounds: 0,
            xchg_rounds: 0,
            failover,
        };
        // The 0-qubit scalar state |> with amplitude 1.
        ctl.run_scatter(vec![Complex::real(1.0)], 0);
        RemoteShardedEngine {
            ctl: Mutex::new(ctl),
            reg: QubitRegistry::new(),
            rng: StdRng::seed_from_u64(seed),
            noise: Mutex::new(NoiseState::new(seed, noise)),
            noise_model: noise,
            gate_count: AtomicU64::new(0),
            measurement_count: 0,
        }
    }

    /// Overrides the watchdog for every blocking protocol receive —
    /// controller reply waits and worker exchange waits alike (the duration
    /// is shared atomically with the workers). Tests use a short one to
    /// prove timeouts diagnose instead of hang.
    pub fn with_watchdog(self, watchdog: Duration) -> Self {
        self.ctl
            .lock()
            .watchdog
            .store(watchdog.as_millis() as u64, Ordering::Relaxed);
        self
    }

    /// The configured worker/shard count.
    pub fn max_shards(&self) -> usize {
        self.ctl.lock().workers()
    }

    /// The engine's transport accounting: command rounds (one per fan-out
    /// of command frames — `(after - before)` across an N-gate batch is 1
    /// where the eager path pays N, the measurable core of the batching
    /// claim), worker↔worker exchange rounds (data motion no framing can
    /// remove), bytes on the wire, and worker respawns (failover events;
    /// always 0 in-process).
    pub fn transport_stats(&self) -> TransportStats {
        let ctl = self.ctl.lock();
        let (wire_bytes, respawns) = match &ctl.link {
            WorkerLink::Owned { comm, .. } => (comm.world_handle().bytes_sent(), 0),
            WorkerLink::Leased(lease) => (lease.comm().world_handle().bytes_sent(), 0),
            WorkerLink::Process(h) => (h.link_ref().wire_bytes(), h.link_ref().respawns()),
        };
        TransportStats {
            command_rounds: ctl.cmd_rounds,
            exchange_rounds: ctl.xchg_rounds,
            wire_bytes,
            respawns,
            // Coalescing happens in the locality wrapper above this engine;
            // the wrapper adds its own window counter on top of these.
            coalesced_flushes: 0,
        }
    }

    /// Test/diagnostic hook: makes shard `shard`'s worker exit its event
    /// loop *without* completing the protocol, simulating a crashed shard
    /// node. In-process, subsequent operations touching that shard trip
    /// the deadlock watchdog instead of hanging; over a socket transport
    /// the worker process exits and failover respawns it.
    pub fn debug_kill_worker(&self, shard: usize) {
        let mut ctl = self.ctl.lock();
        assert!(shard < ctl.workers(), "shard {shard} out of range");
        let _ = ctl.send_raw(shard, &ShardCmd::Die);
    }

    /// Test/diagnostic hook for the socket transports: SIGKILLs shard
    /// `shard`'s worker *process* outright — no protocol, no cleanup, the
    /// hardest death a shard node can die. The next operation touching the
    /// shard observes EOF and runs failover.
    pub fn debug_kill_worker_process(&self, shard: usize) {
        let mut ctl = self.ctl.lock();
        assert!(shard < ctl.workers(), "shard {shard} out of range");
        let WorkerLink::Process(h) = &mut ctl.link else {
            panic!("debug_kill_worker_process requires a multi-process transport");
        };
        h.link().kill_child(shard);
    }

    fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.reg.pos(q)
    }

    #[inline]
    fn count_gate(&self) {
        self.gate_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Uncounted single-qubit matrix application (noise insertions).
    fn gate_1q_at(&self, pos: usize, m: &Mat2) {
        let mut ctl = self.ctl.lock();
        let mut plan = ctl.new_plan();
        ctl.plan_pair(0, 0, pos, PairKernel::Mat(*m), &mut plan);
        ctl.run(|c| c.dispatch(&plan));
    }

    /// Probability of |1> at a raw position (noise sampling, frees).
    fn prob_at(&self, pos: usize) -> f64 {
        let mut ctl = self.ctl.lock();
        let bit = 1usize << pos;
        ctl.run(|c| {
            c.reduce_partials(
                &ShardCmd::Prob {
                    mask: bit,
                    want: bit,
                },
                "probability",
            )
        })
    }

    /// Samples and applies the `class` channel to each listed position —
    /// the same sequencing as the in-process engines (see
    /// `ShardedStateVector::inject`), with the amplitude work expressed as
    /// shard commands.
    fn inject(&self, class: OpClass, positions: &[usize]) {
        let ch = self.noise_model.channel(class);
        if ch.is_ideal() {
            return;
        }
        if matches!(ch, qsim::NoiseChannel::AmplitudeDamping { .. }) {
            let mut guard = self.noise.lock();
            for &pos in positions {
                let action = guard.sample(class, || self.prob_at(pos));
                match action {
                    ChannelAction::Nothing => {}
                    ChannelAction::Pauli(p) => self.gate_1q_at(pos, &p.matrix()),
                    ChannelAction::Kraus(m) => self.gate_1q_at(pos, &m),
                }
            }
            return;
        }
        let actions: Vec<(usize, ChannelAction)> = {
            let mut guard = self.noise.lock();
            positions
                .iter()
                .map(|&pos| {
                    (
                        pos,
                        guard.sample(class, || {
                            unreachable!("Pauli channels never query prob_one")
                        }),
                    )
                })
                .collect()
        };
        for (pos, action) in actions {
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => self.gate_1q_at(pos, &p.matrix()),
                ChannelAction::Kraus(_) => unreachable!("Pauli channels never produce Kraus maps"),
            }
        }
    }

    /// Gathers, removes a collapsed qubit from the flat vector, rebuilds.
    fn remove_at(&mut self, q: QubitId, pos: usize, outcome: bool) {
        let ctl = self.ctl.get_mut();
        let flat = ctl.run_gather();
        let (mut out, dropped) = stripe::remove_qubit_flat(&flat, pos, outcome);
        assert!(
            dropped < NORM_TOL,
            "removing qubit position {pos} with outcome {outcome} would discard {dropped:.3e} \
             probability; collapse it first"
        );
        let norm: f64 = out.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot renormalize the zero vector");
        stripe::scale(&mut out, 1.0 / norm);
        let n = ctl.n_qubits - 1;
        ctl.run_scatter(out, n);
        self.reg.remove(q, pos);
    }
}

impl Drop for RemoteShardedEngine {
    fn drop(&mut self) {
        let ctl = self.ctl.get_mut();
        match &mut ctl.link {
            WorkerLink::Owned { .. } => {
                for s in 0..ctl.workers() {
                    let _ = ctl.send_raw(s, &ShardCmd::Shutdown);
                }
                let WorkerLink::Owned { group, .. } = &mut ctl.link else {
                    unreachable!("link variant checked above");
                };
                if let Some(group) = group.take() {
                    // Never propagate from a destructor (unwinding here
                    // would abort), but a worker that panicked mid-run may
                    // have silently dropped fire-and-forget gate commands —
                    // say so.
                    let panicked = group.join();
                    if panicked > 0 {
                        eprintln!(
                            "remote-shard engine: {panicked} shard worker(s) panicked during the \
                             run; results involving their stripes are suspect"
                        );
                    }
                }
            }
            // Leased workers stay in their event loop: dropping the lease
            // (with the controller) returns the slot to its pool, and the
            // next lessee's construction resets the stripes.
            WorkerLink::Leased(_) => {}
            // Process links own their shutdown protocol: the handle's drop
            // returns pooled links to their pool or terminates the child
            // processes (Shutdown frames, then reap).
            WorkerLink::Process(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A long-lived pool of shard-worker worlds for [`RemoteShardedEngine`]s.
///
/// Each of the pool's `slots` is an independent worker world of `shards`
/// workers running the shard event loop. [`ShardWorkerPool::lease`] grants
/// one engine exclusive use of a slot ([`RemoteShardedEngine::from_lease`]);
/// dropping that engine returns the slot — workers still running — for the
/// next engine, shedding the per-engine thread spawn/join of the
/// [`RemoteShardedEngine::new`] path. Dropping the pool shuts every worker
/// down.
pub struct ShardWorkerPool {
    pool: WorkerPool,
    /// Pool-wide watchdog, shared with every worker at spawn time and with
    /// every controller built over a lease.
    watchdog: Arc<AtomicU64>,
    shards: usize,
}

impl ShardWorkerPool {
    /// Spawns `slots` worker worlds of `shards` shard workers each.
    /// `shards` is rounded up to a power of two and clamped to
    /// `[1, 2^MAX_REMOTE_SHARD_BITS]`, as in [`RemoteShardedEngine::new`].
    pub fn new(slots: usize, shards: usize) -> Self {
        let shards = qsim::sharded::normalize_shards(shards, MAX_REMOTE_SHARD_BITS);
        let watchdog = Arc::new(AtomicU64::new(watchdog_from_env().as_millis() as u64));
        let worker_watchdog = Arc::clone(&watchdog);
        let pool = WorkerPool::new(
            slots,
            shards,
            move |c| shard_worker(c, Arc::clone(&worker_watchdog)),
            |comm, workers| {
                for w in 1..=workers {
                    comm.send(&ShardCmd::Shutdown, w, TAG_CMD);
                }
            },
        );
        ShardWorkerPool {
            pool,
            watchdog,
            shards,
        }
    }

    /// Overrides the watchdog for every engine built over this pool's
    /// leases (shared atomically with the already-running workers).
    pub fn with_watchdog(self, watchdog: Duration) -> Self {
        self.watchdog
            .store(watchdog.as_millis() as u64, Ordering::Relaxed);
        self
    }

    /// Worker (shard) count per slot, after normalization.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.pool.slots()
    }

    /// Slots currently free (racy by nature; a scheduling heuristic).
    pub fn available(&self) -> usize {
        self.pool.available()
    }

    /// Leases a slot, blocking until one frees.
    pub fn lease(&self) -> ShardLease {
        self.wrap(self.pool.lease())
    }

    /// Leases a slot if one is free right now.
    pub fn try_lease(&self) -> Option<ShardLease> {
        self.pool.try_lease().map(|l| self.wrap(l))
    }

    /// Leases a slot, blocking up to `timeout`; `None` on expiry.
    pub fn lease_timeout(&self, timeout: Duration) -> Option<ShardLease> {
        self.pool.lease_timeout(timeout).map(|l| self.wrap(l))
    }

    fn wrap(&self, lease: WorkerLease) -> ShardLease {
        ShardLease {
            lease,
            watchdog: Arc::clone(&self.watchdog),
            shards: self.shards,
        }
    }
}

/// Exclusive use of one [`ShardWorkerPool`] slot, consumed by
/// [`RemoteShardedEngine::from_lease`]. Dropping it unused returns the slot
/// untouched.
pub struct ShardLease {
    lease: WorkerLease,
    watchdog: Arc<AtomicU64>,
    shards: usize,
}

impl ShardLease {
    /// Worker (shard) count of the leased slot.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Stable index of the leased slot within its pool.
    pub fn slot_index(&self) -> usize {
        self.lease.slot_index()
    }
}

impl RemoteShardedEngine {
    /// Plans one [`BatchOp`] into `plan` (positions resolved, masks split)
    /// under an already-held controller lock. Returns the positions the
    /// op's noise channel rides on plus the channel class.
    fn plan_op(
        &self,
        ctl: &Controller,
        op: &qsim::BatchOp,
        plan: &mut Plan,
    ) -> Result<(OpClass, Vec<usize>), SimError> {
        use qsim::BatchOp;
        match op {
            BatchOp::Gate { gate, q } => {
                let pos = self.pos(*q)?;
                ctl.plan_pair(0, 0, pos, PairKernel::Mat(gate.matrix()), plan);
                Ok((OpClass::Gate1q, vec![pos]))
            }
            BatchOp::Controlled {
                controls,
                gate,
                target,
            } => {
                let tpos = self.pos(*target)?;
                let mut cpos = Vec::with_capacity(controls.len());
                for &c in controls {
                    if c == *target {
                        return Err(SimError::DuplicateQubit(c));
                    }
                    cpos.push(self.pos(c)?);
                }
                let (c_lo, c_hi) = ctl.split_masks(&cpos);
                ctl.plan_pair(c_lo, c_hi, tpos, PairKernel::Mat(gate.matrix()), plan);
                cpos.push(tpos);
                Ok((OpClass::Gate2q, cpos))
            }
            BatchOp::Cnot { c, t } => {
                if c == t {
                    return Err(SimError::DuplicateQubit(*c));
                }
                let cp = self.pos(*c)?;
                let tp = self.pos(*t)?;
                let (c_lo, c_hi) = ctl.split_masks(&[cp]);
                ctl.plan_pair(c_lo, c_hi, tp, PairKernel::Swap, plan);
                Ok((OpClass::Gate2q, vec![cp, tp]))
            }
            BatchOp::Cz { a, b } => {
                if a == b {
                    return Err(SimError::DuplicateQubit(*a));
                }
                let pa = self.pos(*a)?;
                let pb = self.pos(*b)?;
                let (lo_mask, hi_mask) = ctl.split_masks(&[pa, pb]);
                ctl.plan_phase(lo_mask, hi_mask, plan);
                Ok((OpClass::Gate2q, vec![pa, pb]))
            }
            BatchOp::Swap { a, b } => {
                // a == b is filtered by the caller (it is a no-op that must
                // not count as a gate).
                let pa = self.pos(*a)?;
                let pb = self.pos(*b)?;
                ctl.plan_swap(pa, pb, plan);
                Ok((OpClass::Gate2q, vec![pa, pb]))
            }
            BatchOp::Fused1q { q, m } => {
                let pos = self.pos(*q)?;
                ctl.plan_pair(0, 0, pos, PairKernel::Mat(*m), plan);
                Ok((OpClass::Gate1q, vec![pos]))
            }
            BatchOp::PhaseSweep { diags, czs } => {
                let mut factors = Vec::with_capacity(diags.len());
                let mut touched = Vec::with_capacity(diags.len() + 2 * czs.len());
                for &(q, d0, d1) in diags {
                    let p = self.pos(q)?;
                    factors.push((p, d0, d1));
                    touched.push(p);
                }
                let mut flips = Vec::with_capacity(czs.len());
                for &(a, b) in czs {
                    if a == b {
                        return Err(SimError::DuplicateQubit(a));
                    }
                    let pa = self.pos(a)?;
                    let pb = self.pos(b)?;
                    flips.push((pa, pb));
                    touched.push(pa);
                    touched.push(pb);
                }
                ctl.plan_phase_sweep(&factors, &flips, plan);
                Ok((OpClass::Gate1q, touched))
            }
        }
    }

    /// Plans the Pauli-noise insertions for one op directly into the same
    /// plan (uncounted 1q kernels), drawing from the shared seeded stream
    /// in exactly the order the eager path would. Only valid for
    /// state-independent models — the caller routes amplitude damping
    /// through the eager per-gate path instead.
    fn plan_noise(&self, ctl: &Controller, class: OpClass, positions: &[usize], plan: &mut Plan) {
        let ch = self.noise_model.channel(class);
        if ch.is_ideal() {
            return;
        }
        let mut guard = self.noise.lock();
        for &pos in positions {
            let action = guard.sample(class, || {
                unreachable!("state-dependent channels never take the batched path")
            });
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => {
                    ctl.plan_pair(0, 0, pos, PairKernel::Mat(p.matrix()), plan)
                }
                ChannelAction::Kraus(_) => {
                    unreachable!("state-independent channels never produce Kraus maps")
                }
            }
        }
    }
}

impl super::ShardableEngine for RemoteShardedEngine {
    fn apply_concurrent(&self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        {
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            ctl.plan_pair(0, 0, pos, PairKernel::Mat(gate.matrix()), &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.count_gate();
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    fn apply_controlled_concurrent(
        &self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        let tpos = self.pos(target)?;
        let mut cpos = Vec::with_capacity(controls.len());
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
            cpos.push(self.pos(c)?);
        }
        {
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            let (c_lo, c_hi) = ctl.split_masks(&cpos);
            ctl.plan_pair(c_lo, c_hi, tpos, PairKernel::Mat(gate.matrix()), &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.count_gate();
        cpos.push(tpos);
        self.inject(OpClass::Gate2q, &cpos);
        Ok(())
    }

    fn cnot_concurrent(&self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        if c == t {
            return Err(SimError::DuplicateQubit(c));
        }
        let cp = self.pos(c)?;
        let tp = self.pos(t)?;
        {
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            let (c_lo, c_hi) = ctl.split_masks(&[cp]);
            ctl.plan_pair(c_lo, c_hi, tp, PairKernel::Swap, &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[cp, tp]);
        Ok(())
    }

    fn cz_concurrent(&self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        {
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            let (lo_mask, hi_mask) = ctl.split_masks(&[pa, pb]);
            ctl.plan_phase(lo_mask, hi_mask, &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    fn swap_concurrent(&self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        {
            // One-round stripe exchange (see Controller::plan_swap) — the
            // same amplitude permutation as the three-CNOT realization,
            // minus 4 of its 6 cross-shard transfers.
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            ctl.plan_swap(pa, pb, &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    fn apply_batch_concurrent(&self, batch: &qsim::GateBatch) -> Result<(), SimError> {
        use qsim::BatchOp;
        if self.noise_model.is_state_dependent() {
            // Amplitude damping reads P(|1>) per insertion — each jump
            // decision must see the state its gate produced, so the stream
            // degrades to eager per-gate dispatch (identical trajectories
            // to the unbatched path by construction).
            for op in batch.ops() {
                match op {
                    BatchOp::Gate { gate, q } => self.apply_concurrent(*gate, *q)?,
                    BatchOp::Controlled {
                        controls,
                        gate,
                        target,
                    } => self.apply_controlled_concurrent(controls, *gate, *target)?,
                    BatchOp::Cnot { c, t } => self.cnot_concurrent(*c, *t)?,
                    BatchOp::Cz { a, b } => self.cz_concurrent(*a, *b)?,
                    BatchOp::Swap { a, b } => self.swap_concurrent(*a, *b)?,
                    // The optimizer never emits these under state-dependent
                    // noise; the decomposing trait defaults keep the eager
                    // path total anyway.
                    BatchOp::Fused1q { q, m } => self.apply_fused_1q_concurrent(*q, m)?,
                    BatchOp::PhaseSweep { diags, czs } => {
                        self.apply_phase_sweep_concurrent(diags, czs)?
                    }
                }
            }
            return Ok(());
        }
        // The batched path: plan every gate (and its controller-sampled
        // Pauli-noise insertions, drawn in eager order from the shared
        // seeded stream) into per-worker op lists under ONE controller
        // acquisition, then ship ONE framed command message per worker.
        let mut ctl = self.ctl.lock();
        let mut plan = ctl.new_plan();
        let mut gates = 0u64;
        let mut result = Ok(());
        for op in batch.ops() {
            if let BatchOp::Swap { a, b } = op {
                if a == b {
                    continue;
                }
            }
            match self.plan_op(&ctl, op, &mut plan) {
                Ok((class, positions)) => {
                    gates += 1;
                    self.plan_noise(&ctl, class, &positions, &mut plan);
                }
                Err(e) => {
                    // Ship what was planned so the applied prefix matches
                    // the eager path, then surface the error.
                    result = Err(e);
                    break;
                }
            }
        }
        ctl.run(|c| c.dispatch(&plan));
        drop(ctl);
        self.gate_count.fetch_add(gates, Ordering::Relaxed);
        result
    }

    fn apply_segments_concurrent(
        &self,
        segs: Vec<(usize, qsim::GateBatch)>,
    ) -> Result<(), SimError> {
        use qsim::BatchOp;
        if self.noise_model.is_state_dependent() {
            // Amplitude damping degrades to eager per-gate dispatch anyway;
            // running segments back to back reproduces the uncoalesced
            // stream exactly.
            for (_rank, batch) in segs {
                self.apply_batch_concurrent(&batch)?;
            }
            return Ok(());
        }
        if segs.len() == 1 {
            let (_rank, batch) = segs.into_iter().next().expect("one segment");
            return self.apply_batch_concurrent(&batch);
        }
        // The coalesced path: plan every segment's gates (and their
        // controller-sampled Pauli-noise insertions, drawn in segment
        // arrival order — the order the uncoalesced flushes would have
        // drawn them) into ONE plan under ONE controller acquisition,
        // recording each segment's per-worker cut position, then ship ONE
        // merged frame per worker.
        let mut ctl = self.ctl.lock();
        let mut plan = ctl.new_plan();
        let mut cuts: Vec<(u64, Vec<usize>)> = Vec::with_capacity(segs.len());
        let mut gates = 0u64;
        let mut result = Ok(());
        'segs: for (rank, batch) in &segs {
            for op in batch.ops() {
                if let BatchOp::Swap { a, b } = op {
                    if a == b {
                        continue;
                    }
                }
                match self.plan_op(&ctl, op, &mut plan) {
                    Ok((class, positions)) => {
                        gates += 1;
                        self.plan_noise(&ctl, class, &positions, &mut plan);
                    }
                    Err(e) => {
                        // Ship the planned prefix (cut mid-segment) so the
                        // applied stream matches the uncoalesced path, then
                        // surface the error.
                        result = Err(e);
                        cuts.push((*rank as u64, plan.ops.iter().map(Vec::len).collect()));
                        break 'segs;
                    }
                }
            }
            cuts.push((*rank as u64, plan.ops.iter().map(Vec::len).collect()));
        }
        ctl.run(|c| c.dispatch_merged(&plan, &cuts));
        drop(ctl);
        self.gate_count.fetch_add(gates, Ordering::Relaxed);
        result
    }
}

impl super::SimEngine for RemoteShardedEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::RemoteSharded {
            shards: self.max_shards(),
        }
    }

    fn noise(&self) -> NoiseModel {
        self.noise_model
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        Some(self.transport_stats())
    }

    fn alloc(&mut self) -> QubitId {
        let ctl = self.ctl.get_mut();
        assert!(ctl.n_qubits < 29, "qubit budget exhausted");
        let pos = ctl.n_qubits;
        let mut flat = ctl.run_gather();
        flat.resize(flat.len() * 2, Complex::default());
        ctl.run_scatter(flat, pos + 1);
        self.reg.push(pos)
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        let outcome = qsim::registry::classical_outcome(q, self.prob_at(pos))?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let outcome = self.measure(q)?;
        let pos = self.pos(q)?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.apply_concurrent(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.apply_controlled_concurrent(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.cnot_concurrent(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.cz_concurrent(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.swap_concurrent(a, b)
    }

    fn apply_batch(&mut self, batch: &qsim::GateBatch) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.apply_batch_concurrent(batch)
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        self.inject(OpClass::Measurement, &[pos]);
        self.measurement_count += 1;
        let p1 = self.prob_at(pos);
        let outcome = self.rng.gen::<f64>() < p1;
        let ctl = self.ctl.get_mut();
        let bit = 1usize << pos;
        ctl.run(|c| c.collapse(bit, if outcome { bit } else { 0 }));
        Ok(outcome)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        Ok(self.prob_at(self.pos(q)?))
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        let mut pos = Vec::with_capacity(qubits.len());
        for &q in qubits {
            pos.push(self.pos(q)?);
        }
        self.inject(OpClass::Measurement, &pos);
        self.measurement_count += 1;
        let mut mask = 0usize;
        for &p in &pos {
            mask |= 1usize << p;
        }
        let ctl = self.ctl.get_mut();
        // The RNG draw sits between two retry units, never inside one —
        // a failover retry must not re-draw it.
        let p_odd =
            ctl.run(|c| c.reduce_partials(&ShardCmd::ParityProb { mask }, "parity probability"));
        let want_odd = self.rng.gen::<f64>() < p_odd;
        ctl.run(|c| {
            let norm = c.reduce_partials(
                &ShardCmd::CollapseParity { mask, want_odd },
                "parity collapse",
            )?;
            let inv = 1.0 / norm.sqrt();
            c.cmd_rounds += 1;
            for s in 0..c.active() {
                c.send_to(s, &ShardCmd::Scale { factor: inv })?;
            }
            Ok(())
        });
        Ok(want_odd)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        let mut mapped = Vec::with_capacity(terms.len());
        for &(q, op) in terms {
            mapped.push(qsim::measure::PauliTerm {
                qubit: self.pos(q)?,
                op,
            });
        }
        // Gather-free: the X mask's shard-crossing half pairs workers up
        // directly (worker↔worker stripe exchange) and each pair reports
        // one complex partial, instead of every stripe flowing to the
        // controller. Partials are summed in shard order, but summing
        // per-stripe subtotals re-associates the floating-point
        // accumulation relative to one global running sum — so values
        // match the gathered evaluation to re-association (last-ulp), not
        // bit for bit. Amplitude bit-identity is unaffected (expectations
        // never write state).
        let mut ctl = self.ctl.lock();
        let (x_mask, z_mask, i_pow) = stripe::pauli_masks(ctl.n_qubits, &mapped);
        let acc = ctl.run(|c| c.expect(x_mask, z_mask));
        let val = i_pow * acc;
        debug_assert!(
            val.im.abs() < 1e-9,
            "expectation of Hermitian operator must be real"
        );
        Ok(val.re)
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        let flat = self.ctl.lock().run_gather();
        Ok(State::from_amplitudes(flat).permuted(&self.reg.permutation(order)?))
    }

    fn n_qubits(&self) -> usize {
        self.reg.len()
    }

    fn gate_count(&self) -> u64 {
        self.gate_count.load(Ordering::Relaxed)
    }

    fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        // Same H + CNOT realization (and gate tally) as the other engines,
        // with interconnect noise drawn from the dedicated EPR channel.
        // Planned as one two-op stream: a single command round.
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        {
            let mut ctl = self.ctl.lock();
            let mut plan = ctl.new_plan();
            ctl.plan_pair(0, 0, pa, PairKernel::Mat(Gate::H.matrix()), &mut plan);
            let (c_lo, c_hi) = ctl.split_masks(&[pa]);
            ctl.plan_pair(c_lo, c_hi, pb, PairKernel::Swap, &mut plan);
            ctl.run(|c| c.dispatch(&plan));
        }
        self.gate_count.fetch_add(2, Ordering::Relaxed);
        self.inject(OpClass::Epr, &[pa, pb]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{QuantumBackend, SimEngine, StateVectorEngine};

    #[test]
    fn shard_cmd_roundtrips_every_variant() {
        let mat = Gate::Ry(0.37).matrix();
        let amps = vec![Complex::new(0.25, -1.5), Complex::new(0.0, 3.0)];
        let cmds = [
            ShardCmd::Load {
                shard_index: 3,
                local_bits: 7,
                amps: amps.clone(),
            },
            ShardCmd::Load {
                shard_index: 5,
                local_bits: 0,
                amps: vec![],
            },
            ShardCmd::Gather,
            ShardCmd::Batch { ops: vec![] },
            ShardCmd::Batch {
                ops: vec![
                    WorkerOp::PairWithin {
                        c_lo: 0b101,
                        tbit: 1 << 4,
                        kernel: PairKernel::Mat(mat),
                    },
                    WorkerOp::PairWithin {
                        c_lo: 0,
                        tbit: 1,
                        kernel: PairKernel::Swap,
                    },
                    WorkerOp::CrossLow {
                        partner: 9,
                        c_lo: 0b11,
                        kernel: PairKernel::Mat(mat),
                    },
                    WorkerOp::CrossHigh { partner: 2 },
                    WorkerOp::Phase { lo_mask: 0b1001 },
                    WorkerOp::SwapWithin {
                        abit: 1 << 2,
                        bbit: 1 << 5,
                    },
                    WorkerOp::SwapCrossLow {
                        partner: 4,
                        abit: 1,
                    },
                    WorkerOp::SwapFull { partner: 7 },
                    WorkerOp::PhaseSweep {
                        diags: vec![
                            (1 << 2, Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)),
                            // Shard-constant factor: mask 0, both entries
                            // the branch this shard lives on.
                            (0, Complex::new(0.5, -0.5), Complex::new(0.5, -0.5)),
                        ],
                        flips: vec![0b110, 0],
                    },
                    WorkerOp::PhaseSweep {
                        diags: vec![],
                        flips: vec![1],
                    },
                ],
            },
            ShardCmd::Expect {
                x_lo: 0b10,
                x_hi: 0b1000,
                z_mask: 0b101,
                role: ExpectRole::Solo,
            },
            ShardCmd::Expect {
                x_lo: 0,
                x_hi: 1 << 6,
                z_mask: 0,
                role: ExpectRole::Low { partner: 3 },
            },
            ShardCmd::Expect {
                x_lo: 0,
                x_hi: 1 << 6,
                z_mask: 0,
                role: ExpectRole::High { partner: 1 },
            },
            ShardCmd::Prob {
                mask: 0b100,
                want: 0b100,
            },
            ShardCmd::ParityProb { mask: 0b111 },
            ShardCmd::Collapse {
                mask: 0b10,
                want: 0,
            },
            ShardCmd::CollapseParity {
                mask: 0b11,
                want_odd: true,
            },
            ShardCmd::Scale { factor: 1.25 },
            ShardCmd::Shutdown,
            ShardCmd::Die,
            ShardCmd::Merged { segs: vec![] },
            ShardCmd::Merged {
                segs: vec![
                    (
                        0,
                        vec![WorkerOp::PairWithin {
                            c_lo: 0b101,
                            tbit: 1 << 4,
                            kernel: PairKernel::Mat(mat),
                        }],
                    ),
                    // Empty segment between non-empty neighbors.
                    (2, vec![]),
                    (
                        3,
                        vec![
                            WorkerOp::Phase { lo_mask: 0b1001 },
                            WorkerOp::SwapFull { partner: 7 },
                        ],
                    ),
                ],
            },
        ];
        for cmd in cmds {
            let bytes = cmpi::to_bytes(&cmd);
            let back: ShardCmd = cmpi::from_bytes(&bytes).expect("decode");
            assert_eq!(back, cmd);
        }
    }

    #[test]
    fn shard_reply_roundtrips() {
        for reply in [
            ShardReply::Partial(0.625),
            ShardReply::Partial(f64::MIN_POSITIVE),
            ShardReply::Amps(vec![Complex::new(1.0, -2.0); 5]),
            ShardReply::Amps(vec![]),
            ShardReply::PartialC(Complex::new(-0.75, 2.5)),
        ] {
            let bytes = cmpi::to_bytes(&reply);
            let back: ShardReply = cmpi::from_bytes(&bytes).expect("decode");
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn corrupt_payloads_rejected() {
        // Unknown discriminant.
        let bad = Bytes::from_static(&[99]);
        assert!(cmpi::from_bytes::<ShardCmd>(&bad).is_none());
        // Batch frame whose op list claims more entries than the payload
        // holds.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf); // ShardCmd::Batch
        3usize.encode(&mut buf); // three ops...
        3u8.encode(&mut buf); // ...but only one Phase follows
        0b1usize.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Batch carrying an op with an unknown discriminant.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf);
        1usize.encode(&mut buf);
        42u8.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Truncated matrix inside a batched within-stripe pair op.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf);
        1usize.encode(&mut buf);
        0u8.encode(&mut buf); // WorkerOp::PairWithin
        0usize.encode(&mut buf);
        1usize.encode(&mut buf);
        1u8.encode(&mut buf); // Mat kernel, but no matrix bytes follow
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Phase sweep claiming more diagonal factors than the payload holds.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf);
        1usize.encode(&mut buf);
        7u8.encode(&mut buf); // WorkerOp::PhaseSweep
        usize::MAX.encode(&mut buf); // absurd factor count
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Phase sweep whose flip-mask count overruns the payload.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf);
        1usize.encode(&mut buf);
        7u8.encode(&mut buf); // WorkerOp::PhaseSweep
        0usize.encode(&mut buf); // no factors...
        4usize.encode(&mut buf); // ...four flips claimed
        1usize.encode(&mut buf); // but only one follows
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Merged frame claiming more segments than the payload holds.
        let mut buf = BytesMut::new();
        11u8.encode(&mut buf); // ShardCmd::Merged
        u32::MAX.encode(&mut buf); // absurd segment count
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Merged frame whose segment is truncated mid-op-list.
        let mut buf = BytesMut::new();
        11u8.encode(&mut buf); // ShardCmd::Merged
        1u32.encode(&mut buf); // one segment
        4u16.encode(&mut buf); // rank 4
        2u32.encode(&mut buf); // two ops claimed...
        3u8.encode(&mut buf); // ...but only one Phase follows
        0b1usize.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Expect with an unknown role.
        let mut buf = BytesMut::new();
        3u8.encode(&mut buf); // ShardCmd::Expect
        0usize.encode(&mut buf);
        0usize.encode(&mut buf);
        0usize.encode(&mut buf);
        9u8.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Amplitude count larger than the payload.
        let mut buf = BytesMut::new();
        1u8.encode(&mut buf); // ShardReply::Amps
        usize::MAX.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardReply>(&buf.freeze()).is_none());
    }

    /// Applies the same circuit to the dense engine and a remote engine and
    /// asserts the amplitudes agree bit-for-bit (the kernels perform the
    /// identical arithmetic in the identical order).
    fn assert_remote_matches_dense_bitwise(shards: usize, noise: NoiseModel, n_qubits: usize) {
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut remote = RemoteShardedEngine::with_noise(1, shards, noise);
        let dq: Vec<QubitId> = (0..n_qubits).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..n_qubits).map(|_| remote.alloc()).collect();
        type Step = Box<dyn Fn(&mut dyn SimEngine, &[QubitId])>;
        let circuit: Vec<Step> = vec![
            Box::new(|e, q| e.apply(Gate::H, q[0]).unwrap()),
            Box::new(|e, q| e.apply(Gate::H, q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.apply(Gate::T, q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.cnot(q[0], q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.cnot(q[q.len() - 1], q[0]).unwrap()),
            Box::new(|e, q| e.cz(q[1], q[q.len() - 2]).unwrap()),
            Box::new(|e, q| e.apply(Gate::S, q[2]).unwrap()),
            Box::new(|e, q| e.swap(q[1], q[q.len() - 1]).unwrap()),
            Box::new(|e, q| {
                e.apply_controlled(&[q[0], q[q.len() - 1]], Gate::Ry(0.7), q[2])
                    .unwrap()
            }),
        ];
        for step in &circuit {
            step(&mut dense, &dq);
            step(&mut remote, &rq);
        }
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        assert_eq!(want.len(), got.len());
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "shards={shards} amp[{i}] differs: {w:?} vs {g:?}"
            );
        }
    }

    #[test]
    fn remote_matches_dense_bitwise_on_fixed_circuit() {
        for shards in [1usize, 2, 8] {
            assert_remote_matches_dense_bitwise(shards, NoiseModel::ideal(), 6);
        }
    }

    #[test]
    fn remote_matches_dense_bitwise_under_pauli_noise() {
        let noise = NoiseModel::depolarizing(0.25)
            .with_measurement(qsim::NoiseChannel::Dephasing { p: 0.3 });
        for shards in [1usize, 2, 4] {
            assert_remote_matches_dense_bitwise(shards, noise, 5);
        }
    }

    #[test]
    fn remote_measurement_and_free_roundtrip() {
        let mut e = RemoteShardedEngine::new(7, 4);
        let a = e.alloc();
        let b = e.alloc();
        let c = e.alloc();
        e.apply(Gate::X, c).unwrap();
        assert!((e.prob_one(c).unwrap() - 1.0).abs() < 1e-12);
        assert!(e.prob_one(a).unwrap() < 1e-12);
        // Removing the middle qubit shifts c down; it must still read |1>.
        assert!(!e.free(b).unwrap());
        assert!(e.measure_and_free(c).unwrap());
        assert!(!e.measure(a).unwrap());
        assert_eq!(e.n_qubits(), 1);
        assert_eq!(e.measurement_count(), 2);
    }

    #[test]
    fn remote_epr_pair_correlates() {
        for seed in 0..6u64 {
            let mut e = RemoteShardedEngine::new(seed, 2);
            let a = e.alloc();
            let b = e.alloc();
            e.entangle_epr(a, b).unwrap();
            let zz = e.expectation(&[(a, Pauli::Z), (b, Pauli::Z)]).unwrap();
            assert!((zz - 1.0).abs() < 1e-10, "seed {seed}: <ZZ> = {zz}");
            let ma = e.measure(a).unwrap();
            let mb = e.measure(b).unwrap();
            assert_eq!(ma, mb, "seed {seed}: EPR halves must agree");
        }
    }

    #[test]
    fn remote_parity_measurement_projects() {
        let mut e = RemoteShardedEngine::new(11, 4);
        let a = e.alloc();
        let b = e.alloc();
        e.apply(Gate::H, a).unwrap();
        e.cnot(a, b).unwrap();
        // EPR pair lives entirely in the even-parity subspace.
        assert!(!e.measure_z_parity(&[a, b]).unwrap());
        let st = e.state_vector(&[a, b]).unwrap();
        assert!((st.probability(0b00) - 0.5).abs() < 1e-10);
        assert!((st.probability(0b11) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn remote_amplitude_damping_tracks_dense_on_fixed_circuit() {
        // The jump decision reads prob_one, whose reduction order differs
        // between engines; a fixed seed and circuit keeps both on the same
        // trajectory branch, and the Kraus maps must then agree closely.
        let noise = NoiseModel::amplitude_damping(0.2);
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut remote = RemoteShardedEngine::with_noise(1, 4, noise);
        let dq: Vec<QubitId> = (0..4).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..4).map(|_| remote.alloc()).collect();
        for (d, r) in [(0, 0), (1, 1)] {
            dense.apply(Gate::H, dq[d]).unwrap();
            remote.apply(Gate::H, rq[r]).unwrap();
        }
        dense.cnot(dq[0], dq[2]).unwrap();
        remote.cnot(rq[0], rq[2]).unwrap();
        dense.apply(Gate::Ry(0.9), dq[1]).unwrap();
        remote.apply(Gate::Ry(0.9), rq[1]).unwrap();
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        for i in 0..want.len() {
            assert!(
                want.amplitude(i).approx_eq(got.amplitude(i), 1e-12),
                "amp[{i}]: {:?} vs {:?}",
                want.amplitude(i),
                got.amplitude(i)
            );
        }
    }

    fn batch_of(ops: Vec<qsim::BatchOp>) -> qsim::GateBatch {
        let mut b = qsim::GateBatch::new();
        for op in ops {
            b.push(op);
        }
        b
    }

    /// The acceptance assertion behind the batching claim: an N-gate
    /// within-shard stream costs ONE controller→worker command round
    /// batched (plus one round per cross-shard op for the exchanges),
    /// where the eager path pays one round per gate.
    #[test]
    fn batched_stream_collapses_command_rounds() {
        use qsim::BatchOp;
        let mut e = RemoteShardedEngine::new(5, 4);
        let qs: Vec<QubitId> = (0..4).map(|_| e.alloc()).collect();
        // Eager: one command round per gate.
        let before = e.transport_stats().command_rounds;
        for &q in &qs {
            SimEngine::apply(&mut e, Gate::H, q).unwrap();
        }
        assert_eq!(
            e.transport_stats().command_rounds - before,
            4,
            "eager pays a round per gate"
        );

        // Batched: the same four gates in one round.
        let before = e.transport_stats().command_rounds;
        let batch = batch_of(
            qs.iter()
                .map(|&q| BatchOp::Gate { gate: Gate::H, q })
                .collect(),
        );
        SimEngine::apply_batch(&mut e, &batch).unwrap();
        assert_eq!(
            e.transport_stats().command_rounds - before,
            1,
            "batched pays one round total"
        );

        // A batch with cross-shard ops: still one command round; each
        // cross-shard pairing adds only its irreducible stripe exchange.
        // Qubits 2 and 3 are shard-selecting at 4 shards with 4 qubits
        // (2 local bits).
        let stats_before = e.transport_stats();
        let (before, xchg_before) = (stats_before.command_rounds, stats_before.exchange_rounds);
        let batch = batch_of(vec![
            BatchOp::Gate {
                gate: Gate::T,
                q: qs[0],
            },
            BatchOp::Cnot { c: qs[0], t: qs[3] },
            BatchOp::Swap { a: qs[1], b: qs[2] },
            BatchOp::Cz { a: qs[2], b: qs[3] },
        ]);
        SimEngine::apply_batch(&mut e, &batch).unwrap();
        let stats_after = e.transport_stats();
        let cmd_delta = stats_after.command_rounds - before;
        let xchg_delta = stats_after.exchange_rounds - xchg_before;
        assert_eq!(
            cmd_delta, 1,
            "one command round regardless of batch content"
        );
        assert!(
            cmd_delta + xchg_delta <= 1 + 2 * 4,
            "total rounds bounded by 1 + cross-shard exchange pairs, got {cmd_delta}+{xchg_delta}"
        );
        assert!(xchg_delta >= 2, "cross-shard ops must pay their exchanges");
        // The state must still be exact: undo everything and check |0..0>
        // parity against the dense engine instead of trusting counters.
        let got = e.state_vector(&qs).unwrap();
        let mut dense = StateVectorEngine::new(5);
        let dq: Vec<QubitId> = (0..4).map(|_| dense.alloc()).collect();
        for &q in &dq {
            dense.apply(Gate::H, q).unwrap();
            dense.apply(Gate::H, q).unwrap();
        }
        dense.apply(Gate::T, dq[0]).unwrap();
        dense.cnot(dq[0], dq[3]).unwrap();
        dense.swap(dq[1], dq[2]).unwrap();
        dense.cz(dq[2], dq[3]).unwrap();
        let want = dense.state_vector(&dq).unwrap();
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "amp[{i}]: {w:?} vs {g:?}"
            );
        }
    }

    /// Optimizer-emitted ops are first-class wire ops: a fused 1q kernel
    /// plus a merged phase sweep ship in ONE command round with zero
    /// stripe exchanges (sweeps are shard-local by construction), apply
    /// fewer kernel sweeps than the primitive stream they replace, and
    /// reproduce the dense engine's amplitudes bit-for-bit.
    #[test]
    fn fused_ops_ship_in_one_round_and_match_dense_bitwise() {
        use qsim::BatchOp;
        // 5 qubits over 4 shards: positions 3 and 4 are shard-selecting,
        // so the sweep exercises local factors, shard-constant factors,
        // and all three CZ localizations (lo/lo+hi/hi+hi).
        let stream = |qs: &[QubitId]| {
            batch_of(vec![
                BatchOp::Gate {
                    gate: Gate::H,
                    q: qs[0],
                },
                BatchOp::Gate {
                    gate: Gate::Ry(0.3),
                    q: qs[0],
                },
                BatchOp::Gate {
                    gate: Gate::T,
                    q: qs[3],
                },
                BatchOp::Gate {
                    gate: Gate::T,
                    q: qs[4],
                },
                BatchOp::Gate {
                    gate: Gate::Z,
                    q: qs[1],
                },
                BatchOp::Cz { a: qs[1], b: qs[3] },
                BatchOp::Cz { a: qs[0], b: qs[4] },
                BatchOp::Cz { a: qs[3], b: qs[4] },
            ])
        };
        let mut dense = StateVectorEngine::new(2);
        let mut remote = RemoteShardedEngine::new(2, 4);
        let dq: Vec<QubitId> = (0..5).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..5).map(|_| remote.alloc()).collect();
        for i in 0..5 {
            dense.apply(Gate::H, dq[i]).unwrap();
            SimEngine::apply(&mut remote, Gate::H, rq[i]).unwrap();
        }
        let d_opt = qsim::optimize(stream(&dq));
        let r_opt = qsim::optimize(stream(&rq));
        assert!(
            d_opt
                .ops()
                .iter()
                .any(|op| matches!(op, BatchOp::Fused1q { .. }))
                && d_opt
                    .ops()
                    .iter()
                    .any(|op| matches!(op, BatchOp::PhaseSweep { .. })),
            "the optimizer must emit both fused op kinds here: {:?}",
            d_opt.ops()
        );
        assert!(d_opt.len() < stream(&dq).len(), "fewer kernel sweeps");
        let before = remote.transport_stats();
        SimEngine::apply_batch(&mut dense, &d_opt).unwrap();
        SimEngine::apply_batch(&mut remote, &r_opt).unwrap();
        let after = remote.transport_stats();
        assert_eq!(
            after.command_rounds - before.command_rounds,
            1,
            "one framed round per batch, fused or not"
        );
        assert_eq!(
            after.exchange_rounds, before.exchange_rounds,
            "fused 1q kernels and phase sweeps are shard-local"
        );
        assert_eq!(dense.gate_count(), remote.gate_count());
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "amp[{i}]: {w:?} vs {g:?}"
            );
        }
    }

    /// Batched and eager application must stay bit-identical per seed —
    /// including under Pauli noise, where the controller samples the shared
    /// stream per op while planning.
    #[test]
    fn batched_stream_is_bit_identical_to_eager_under_noise() {
        use qsim::BatchOp;
        let noise = NoiseModel::depolarizing(0.3);
        for shards in [1usize, 2, 4] {
            let mut eager = RemoteShardedEngine::with_noise(9, shards, noise);
            let mut batched = RemoteShardedEngine::with_noise(9, shards, noise);
            let eq: Vec<QubitId> = (0..5).map(|_| eager.alloc()).collect();
            let bq: Vec<QubitId> = (0..5).map(|_| batched.alloc()).collect();
            let ops = |qs: &[QubitId]| {
                vec![
                    BatchOp::Gate {
                        gate: Gate::H,
                        q: qs[0],
                    },
                    BatchOp::Gate {
                        gate: Gate::T,
                        q: qs[4],
                    },
                    BatchOp::Cnot { c: qs[0], t: qs[4] },
                    BatchOp::Swap { a: qs[1], b: qs[4] },
                    BatchOp::Cz { a: qs[2], b: qs[3] },
                    BatchOp::Controlled {
                        controls: vec![qs[0]],
                        gate: Gate::Ry(0.4),
                        target: qs[2],
                    },
                ]
            };
            for op in ops(&eq) {
                match op {
                    BatchOp::Gate { gate, q } => SimEngine::apply(&mut eager, gate, q).unwrap(),
                    BatchOp::Controlled {
                        ref controls,
                        gate,
                        target,
                    } => eager.apply_controlled(controls, gate, target).unwrap(),
                    BatchOp::Cnot { c, t } => eager.cnot(c, t).unwrap(),
                    BatchOp::Cz { a, b } => eager.cz(a, b).unwrap(),
                    BatchOp::Swap { a, b } => SimEngine::swap(&mut eager, a, b).unwrap(),
                    BatchOp::Fused1q { .. } | BatchOp::PhaseSweep { .. } => {
                        unreachable!("this stream records primitive ops only")
                    }
                }
            }
            SimEngine::apply_batch(&mut batched, &batch_of(ops(&bq))).unwrap();
            assert_eq!(eager.gate_count(), batched.gate_count(), "shards={shards}");
            let want = eager.state_vector(&eq).unwrap();
            let got = batched.state_vector(&bq).unwrap();
            for i in 0..want.len() {
                let (w, g) = (want.amplitude(i), got.amplitude(i));
                assert!(
                    w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                    "shards={shards} amp[{i}]: {w:?} vs {g:?}"
                );
            }
        }
    }

    /// The gather-free expectation protocol: cross-shard X/Y strings pair
    /// workers directly; values must match the dense engine on a
    /// non-trivial entangled state, and no stripe may flow to the
    /// controller (asserted via the command pattern: expectation issues no
    /// Gather, so byte traffic stays far below a stripe gather's).
    #[test]
    fn expectation_is_gather_free_and_matches_dense() {
        // 6 qubits over 4 shards: positions 4 and 5 are shard-selecting,
        // so X/Y strings touching them exercise the worker↔worker pairing.
        let mut e = RemoteShardedEngine::new(3, 4);
        let mut dense = StateVectorEngine::new(3);
        let rq: Vec<QubitId> = (0..6).map(|_| e.alloc()).collect();
        let dq: Vec<QubitId> = (0..6).map(|_| dense.alloc()).collect();
        for (engine_q, dense_q) in rq.iter().zip(&dq) {
            SimEngine::apply(&mut e, Gate::H, *engine_q).unwrap();
            dense.apply(Gate::H, *dense_q).unwrap();
        }
        e.cnot(rq[0], rq[5]).unwrap();
        dense.cnot(dq[0], dq[5]).unwrap();
        SimEngine::apply(&mut e, Gate::T, rq[2]).unwrap();
        dense.apply(Gate::T, dq[2]).unwrap();
        let pick = |qs: &[QubitId]| -> Vec<Vec<(QubitId, Pauli)>> {
            vec![
                vec![(qs[0], Pauli::Z), (qs[5], Pauli::Z)],
                vec![(qs[0], Pauli::X), (qs[5], Pauli::X)], // shard-crossing X
                vec![(qs[4], Pauli::Y), (qs[5], Pauli::X)], // both shard bits
                vec![(qs[2], Pauli::Y)],
                vec![(qs[1], Pauli::X), (qs[2], Pauli::Z), (qs[5], Pauli::Y)],
            ]
        };
        for (rs, ds) in pick(&rq).iter().zip(&pick(&dq)) {
            let got = e.expectation(rs).unwrap();
            let want = dense.expectation(ds).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "expectation {rs:?}: {got} vs {want}"
            );
        }
        // Traffic check: a shard-crossing expectation moves the paired
        // stripes worker↔worker (half the amplitudes), never the full
        // gather to the controller.
        let world = {
            let ctl = e.ctl.lock();
            std::sync::Arc::clone(ctl.comm().world_handle())
        };
        let bytes_before = world.bytes_sent();
        e.expectation(&[(rq[0], Pauli::X), (rq[5], Pauli::X)])
            .unwrap();
        let xchg_traffic = world.bytes_sent() - bytes_before;
        let bytes_before = world.bytes_sent();
        let _ = e.state_vector(&rq).unwrap(); // a real gather, for scale
        let gather_traffic = world.bytes_sent() - bytes_before;
        assert!(
            xchg_traffic < gather_traffic,
            "gather-free expectation ({xchg_traffic} B) must move less than a gather \
             ({gather_traffic} B)"
        );
    }

    #[test]
    fn watchdog_diagnoses_dead_worker_instead_of_hanging() {
        let start = std::time::Instant::now();
        let e = RemoteShardedEngine::new(3, 2).with_watchdog(Duration::from_millis(200));
        let mut e = e;
        let a = e.alloc();
        let b = e.alloc();
        e.apply(Gate::H, a).unwrap();
        // Kill shard 1's worker, then run a reduction that needs it.
        e.debug_kill_worker(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.prob_one(b).unwrap();
        }))
        .expect_err("query against a dead worker must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("watchdog"),
            "panic must carry the watchdog diagnostic, got: {msg}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog must fire promptly, not hang"
        );
        drop(e); // shutdown must still reap the surviving workers
    }

    /// A worker dying *mid-batch* — with a framed gate stream already in
    /// its mailbox and a cross-shard exchange pending against it — must
    /// surface as a watchdog diagnostic on the next protocol round, not a
    /// hang. (The surviving exchange partner panics with its own watchdog
    /// message; the controller's next reduction then times out loudly.)
    #[test]
    fn watchdog_diagnoses_worker_dying_mid_batch() {
        use qsim::BatchOp;
        let start = std::time::Instant::now();
        let mut e = RemoteShardedEngine::new(7, 4).with_watchdog(Duration::from_millis(200));
        let qs: Vec<QubitId> = (0..4).map(|_| e.alloc()).collect();
        SimEngine::apply(&mut e, Gate::H, qs[0]).unwrap();
        // Kill shard 2's worker, then ship a batch whose cross-shard CNOT
        // pairs a live worker with the dead one. The batch send itself is
        // fire-and-forget; the failure must surface on the next reduction.
        e.debug_kill_worker(2);
        let batch = batch_of(vec![
            BatchOp::Gate {
                gate: Gate::H,
                q: qs[1],
            },
            // Qubit 3 is shard-selecting (2 local bits at 4 shards), so
            // this pairs shards across the dead worker.
            BatchOp::Cnot { c: qs[0], t: qs[3] },
        ]);
        SimEngine::apply_batch(&mut e, &batch).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.prob_one(qs[3]).unwrap();
        }))
        .expect_err("reduction against a dead worker must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("watchdog"),
            "panic must carry the watchdog diagnostic, got: {msg}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog must fire promptly, not hang"
        );
        drop(e); // shutdown must still reap the surviving workers
    }

    #[test]
    fn remote_backend_kind_builds_under_sharded_shared() {
        let backend = crate::backend::build_backend(
            BackendKind::RemoteSharded { shards: 4 },
            cmpi::TransportKind::InProcess,
            5,
            NoiseModel::ideal(),
        )
        .unwrap();
        assert_eq!(backend.kind(), BackendKind::RemoteSharded { shards: 4 });
        let qa = backend.alloc(0, 1)[0];
        let qb = backend.alloc(1, 1)[0];
        backend.entangle_epr(qa, qb).unwrap();
        let ma = backend.measure(0, qa).unwrap();
        let mb = backend.measure(1, qb).unwrap();
        assert_eq!(ma, mb);
        assert_eq!(backend.counts().epr_entanglements, 1);
    }

    #[test]
    fn wrapper_runs_concurrent_rank_gates_against_workers() {
        use std::sync::Arc;
        let backend: Arc<dyn QuantumBackend> = crate::backend::build_backend(
            BackendKind::RemoteSharded { shards: 4 },
            cmpi::TransportKind::InProcess,
            3,
            NoiseModel::ideal(),
        )
        .unwrap();
        let mut qubits = Vec::new();
        for rank in 0..4usize {
            qubits.push((rank, backend.alloc(rank, 2)));
        }
        std::thread::scope(|s| {
            for (rank, qs) in &qubits {
                let backend = Arc::clone(&backend);
                s.spawn(move || {
                    for _ in 0..10 {
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                    }
                });
            }
        });
        // Every rank's round was self-inverse: all qubits must read |0>.
        for (rank, qs) in &qubits {
            for &q in qs {
                assert!(backend.prob_one(*rank, q).unwrap() < 1e-9);
                backend.measure_and_free(*rank, q).unwrap();
            }
        }
        assert_eq!(backend.counts().live_qubits, 0);
    }

    /// A short seeded program with measurements, exercising gates,
    /// cross-shard pairing, and RNG-consuming collapses.
    fn seeded_trajectory(e: &mut RemoteShardedEngine, seed_angle: f64) -> (Vec<bool>, Vec<u64>) {
        let qs: Vec<QubitId> = (0..4).map(|_| e.alloc()).collect();
        SimEngine::apply(e, Gate::Ry(seed_angle), qs[0]).unwrap();
        e.cnot(qs[0], qs[3]).unwrap();
        SimEngine::apply(e, Gate::H, qs[1]).unwrap();
        e.cz(qs[1], qs[2]).unwrap();
        let outcomes: Vec<bool> = qs
            .into_iter()
            .map(|q| SimEngine::measure_and_free(e, q).unwrap())
            .collect();
        (outcomes, vec![e.gate_count(), e.measurement_count()])
    }

    #[test]
    fn leased_engines_are_bit_identical_to_spawned_and_slots_reset() {
        let pool = ShardWorkerPool::new(2, 4);
        assert_eq!(pool.shards(), 4);
        assert_eq!(pool.available(), 2);
        for (seed, angle) in [(11u64, 0.3), (12, 1.1), (11, 0.3)] {
            // Spawn-per-engine reference trajectory.
            let mut spawned = RemoteShardedEngine::new(seed, 4);
            let want = seeded_trajectory(&mut spawned, angle);
            // Same seed over a pooled lease — including the third pass,
            // which reuses a slot two earlier engines already dirtied.
            let lease = pool.try_lease().expect("slot free");
            let mut leased = RemoteShardedEngine::from_lease(seed, lease, NoiseModel::ideal());
            let got = seeded_trajectory(&mut leased, angle);
            assert_eq!(got, want, "seed {seed}: pooled must match spawned");
            drop(leased);
            assert_eq!(pool.available(), 2, "slot returned on engine drop");
        }
    }

    #[test]
    fn concurrent_leases_run_isolated_worlds() {
        use std::sync::Arc;
        let pool = Arc::new(ShardWorkerPool::new(2, 2));
        let solo: Vec<_> = (0..2u64)
            .map(|seed| {
                let mut e = RemoteShardedEngine::new(seed, 2);
                seeded_trajectory(&mut e, 0.4 + seed as f64)
            })
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u64)
                .map(|seed| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut e = RemoteShardedEngine::from_lease(
                            seed,
                            pool.lease(),
                            NoiseModel::ideal(),
                        );
                        seeded_trajectory(&mut e, 0.4 + seed as f64)
                    })
                })
                .collect();
            for (seed, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), solo[seed], "seed {seed}");
            }
        });
    }
}
