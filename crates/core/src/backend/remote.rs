//! Process-separated shard workers: the remote sharded state-vector engine.
//!
//! [`super::ShardedStateVector`] stripes the amplitude vector across lock
//! guards in one address space. This module removes that last assumption:
//! [`RemoteShardedEngine`] places each of the `2^k` amplitude shards in a
//! dedicated *worker rank* — its own thread of control with its own mailbox,
//! spawned via [`cmpi::Universe::spawn_workers`] — and turns every shard
//! interaction into a [`cmpi`] message protocol. Nothing but messages
//! crosses the shard boundary, which is the paper's actual deployment model
//! (Section 4: shards live in separate QMPI nodes) and the shape NetQMPI
//! gives its MPI simulation workers.
//!
//! ## Roles and message flow
//!
//! The engine is the *controller* (rank 0 of a private worker world); shard
//! `s` is owned by worker rank `s + 1`. Three tag channels exist:
//!
//! | tag | direction | carries |
//! |---|---|---|
//! | `TAG_CMD` | controller → worker | [`ShardCmd`] (gates, queries, lifecycle) |
//! | `TAG_REPLY` | worker → controller | [`ShardReply`] (partial sums, stripes) |
//! | `TAG_XCHG` | worker ↔ worker | stripe amplitudes for cross-shard pairing |
//!
//! Every command broadcast happens under one controller lock, so all
//! workers observe the *same global command order*; each worker applies its
//! commands sequentially from its mailbox (FIFO per sender under cmpi's
//! non-overtaking guarantee). Together those two facts give every stripe a
//! single consistent history — the property the in-process engine gets from
//! its axis lock — without any shared memory.
//!
//! * **Within-shard gates** broadcast a [`ShardCmd::PairWithin`] to each
//!   participating shard; workers run the identical
//!   [`qsim::stripe`] kernels the lock-striped store uses, in parallel.
//! * **Cross-shard gates** pair shard `s0` with `s0 | tbit`: the high
//!   member ships its stripe to the low member ([`ShardCmd::PairCrossHigh`]
//!   / [`ShardCmd::PairCrossLow`]), which zips the pair kernel across both
//!   stripes and ships the updated half back.
//! * **Measurement** is a reduction: a probability query fans out, partial
//!   masses come back, the controller samples, and a collapse + rescale
//!   round trip finishes the projection.
//! * **Noise** is sampled on the controller (same seeded
//!   [`qsim::noise::NoiseState`] stream as the dense engine, so single-
//!   threaded trajectories are identical) and injected as uncounted
//!   single-qubit gate commands.
//! * **Structural operations** (allocate/free qubits, snapshots) gather the
//!   stripes, rebuild, and scatter — the message-passing analogue of the
//!   in-process store's flatten/rebuild.
//!
//! ## Deadlock watchdog
//!
//! A dead or deadlocked worker must fail CI with a diagnostic, not hang it.
//! Every blocking receive the controller (and a worker awaiting its
//! exchange partner) performs goes through [`cmpi::Communicator::recv_timeout`]
//! with the engine's watchdog duration (default 30 s, overridable via the
//! `QMPI_REMOTE_WATCHDOG_MS` environment variable at engine construction or
//! [`RemoteShardedEngine::with_watchdog`]); expiry panics with the shard and
//! operation that timed out.
//!
//! The engine implements [`super::ShardableEngine`], so it slots under the
//! existing [`super::ShardedShared`] reader-writer locality wrapper
//! unchanged: select it with [`super::BackendKind::RemoteSharded`].

use super::BackendKind;
use bytes::{Bytes, BytesMut};
use cmpi::{Communicator, Decode, Encode, Universe, WorkerGroup};
use parking_lot::Mutex;
use qsim::gates::Mat2;
use qsim::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use qsim::registry::QubitRegistry;
use qsim::state::NORM_TOL;
use qsim::stripe;
use qsim::{Complex, Gate, Pauli, QubitId, SimError, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Command channel: controller → worker.
const TAG_CMD: cmpi::Tag = 0;
/// Reply channel: worker → controller.
const TAG_REPLY: cmpi::Tag = 1;
/// Stripe-exchange channel: worker ↔ worker (cross-shard pairing).
const TAG_XCHG: cmpi::Tag = 2;

/// The controller's rank in the private worker world.
const CONTROLLER: usize = 0;

/// Hard cap on the worker count (`2^6` = 64 worker ranks); each shard is a
/// real thread with a mailbox, so this is deliberately tighter than the
/// in-process stripe cap.
pub const MAX_REMOTE_SHARD_BITS: u32 = 6;

/// Default watchdog for blocking protocol receives.
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

fn watchdog_from_env() -> Duration {
    std::env::var("QMPI_REMOTE_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_WATCHDOG)
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

fn encode_complex(c: &Complex, buf: &mut BytesMut) {
    c.re.encode(buf);
    c.im.encode(buf);
}

fn decode_complex(buf: &mut Bytes) -> Option<Complex> {
    let re = f64::decode(buf)?;
    let im = f64::decode(buf)?;
    Some(Complex::new(re, im))
}

fn encode_amps(amps: &[Complex], buf: &mut BytesMut) {
    amps.len().encode(buf);
    for a in amps {
        encode_complex(a, buf);
    }
}

fn decode_amps(buf: &mut Bytes) -> Option<Vec<Complex>> {
    let len = usize::decode(buf)?;
    // 16 wire bytes per amplitude; reject corrupted lengths early.
    if len > buf.len() / 16 {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(decode_complex(buf)?);
    }
    Some(out)
}

fn encode_mat(m: &Mat2, buf: &mut BytesMut) {
    for row in m {
        for c in row {
            encode_complex(c, buf);
        }
    }
}

fn decode_mat(buf: &mut Bytes) -> Option<Mat2> {
    let mut m = [[Complex::default(); 2]; 2];
    for row in &mut m {
        for c in row.iter_mut() {
            *c = decode_complex(buf)?;
        }
    }
    Some(m)
}

/// Stripe payload exchanged between cross-shard pairing partners.
#[derive(Clone, Debug, PartialEq)]
pub struct WireAmps(pub Vec<Complex>);

impl Encode for WireAmps {
    fn encode(&self, buf: &mut BytesMut) {
        encode_amps(&self.0, buf);
    }
}

impl Decode for WireAmps {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        decode_amps(buf).map(WireAmps)
    }
}

/// The amplitude-pair kernel a pairing command applies: a full 2x2 unitary
/// or the CNOT/SWAP fast path (a pure amplitude swap, no arithmetic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PairKernel {
    /// Swap the pair members (CNOT/SWAP fast path).
    Swap,
    /// Multiply the pair by a 2x2 matrix.
    Mat(Mat2),
}

impl PairKernel {
    /// Runs the kernel over within-stripe pairs (target bit inside the
    /// stripe). Identical arithmetic to the dense and lock-striped engines.
    fn apply_within(self, amps: &mut [Complex], c_lo: usize, tbit: usize) {
        match self {
            PairKernel::Swap => stripe::pair_within(amps, c_lo, tbit, |a0, a1| {
                std::mem::swap(a0, a1);
            }),
            PairKernel::Mat(m) => stripe::pair_within(amps, c_lo, tbit, |a0, a1| {
                let (x0, x1) = (*a0, *a1);
                *a0 = m[0][0] * x0 + m[0][1] * x1;
                *a1 = m[1][0] * x0 + m[1][1] * x1;
            }),
        }
    }

    /// Runs the kernel across a stripe pair (target bit selects the shard).
    fn apply_across(self, a: &mut [Complex], b: &mut [Complex], c_lo: usize) {
        match self {
            PairKernel::Swap => stripe::pair_across(a, b, c_lo, |a0, a1| {
                std::mem::swap(a0, a1);
            }),
            PairKernel::Mat(m) => stripe::pair_across(a, b, c_lo, |a0, a1| {
                let (x0, x1) = (*a0, *a1);
                *a0 = m[0][0] * x0 + m[0][1] * x1;
                *a1 = m[1][0] * x0 + m[1][1] * x1;
            }),
        }
    }
}

impl Encode for PairKernel {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PairKernel::Swap => 0u8.encode(buf),
            PairKernel::Mat(m) => {
                1u8.encode(buf);
                encode_mat(m, buf);
            }
        }
    }
}

impl Decode for PairKernel {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(PairKernel::Swap),
            1 => decode_mat(buf).map(PairKernel::Mat),
            _ => None,
        }
    }
}

/// One command from the controller to a shard worker. See the module docs
/// for the protocol each variant participates in.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardCmd {
    /// Replace the worker's stripe: shard index, within-stripe bit count,
    /// and the amplitudes (empty for inactive workers).
    Load {
        /// This worker's shard index among the active shards.
        shard_index: usize,
        /// Number of index bits addressing within the stripe.
        local_bits: usize,
        /// The stripe's amplitudes.
        amps: Vec<Complex>,
    },
    /// Reply with the current stripe ([`ShardReply::Amps`]).
    Gather,
    /// Apply a pair kernel to within-stripe pairs.
    PairWithin {
        /// Within-stripe control mask.
        c_lo: usize,
        /// Target bit (within-stripe).
        tbit: usize,
        /// Kernel to apply.
        kernel: PairKernel,
    },
    /// Cross-shard pairing, low member: await the partner's stripe on
    /// `TAG_XCHG`, zip the kernel across both, ship the partner's half back.
    PairCrossLow {
        /// World rank of the high partner.
        partner: usize,
        /// Within-stripe control mask.
        c_lo: usize,
        /// Kernel to apply.
        kernel: PairKernel,
    },
    /// Cross-shard pairing, high member: ship the stripe to the low
    /// partner, await the updated amplitudes.
    PairCrossHigh {
        /// World rank of the low partner.
        partner: usize,
    },
    /// Diagonal phase pass (CZ): negate amplitudes matching the mask.
    Phase {
        /// Within-stripe mask selecting negated amplitudes.
        lo_mask: usize,
    },
    /// Reply with the stripe's probability mass where the global index
    /// matches `want` under `mask` ([`ShardReply::Partial`]).
    Prob {
        /// Global index mask.
        mask: usize,
        /// Required masked value.
        want: usize,
    },
    /// Reply with the stripe's odd-parity probability mass under `mask`.
    ParityProb {
        /// Global parity mask.
        mask: usize,
    },
    /// Zero amplitudes not matching `want` under `mask`; reply with the
    /// kept mass (collapse phase of a projective measurement).
    Collapse {
        /// Global index mask.
        mask: usize,
        /// Masked value of the surviving subspace.
        want: usize,
    },
    /// Parity collapse: keep the `want_odd` subspace, reply with kept mass.
    CollapseParity {
        /// Global parity mask.
        mask: usize,
        /// Which parity survives.
        want_odd: bool,
    },
    /// Rescale every amplitude (renormalization after a collapse).
    Scale {
        /// Real scale factor.
        factor: f64,
    },
    /// Exit the event loop cleanly (sent by the engine's destructor).
    Shutdown,
    /// Exit the event loop *without* completing the protocol — a test hook
    /// for exercising the deadlock watchdog (a worker that dies mid-run).
    Die,
}

impl Encode for ShardCmd {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ShardCmd::Load {
                shard_index,
                local_bits,
                amps,
            } => {
                0u8.encode(buf);
                shard_index.encode(buf);
                local_bits.encode(buf);
                encode_amps(amps, buf);
            }
            ShardCmd::Gather => 1u8.encode(buf),
            ShardCmd::PairWithin { c_lo, tbit, kernel } => {
                2u8.encode(buf);
                c_lo.encode(buf);
                tbit.encode(buf);
                kernel.encode(buf);
            }
            ShardCmd::PairCrossLow {
                partner,
                c_lo,
                kernel,
            } => {
                3u8.encode(buf);
                partner.encode(buf);
                c_lo.encode(buf);
                kernel.encode(buf);
            }
            ShardCmd::PairCrossHigh { partner } => {
                4u8.encode(buf);
                partner.encode(buf);
            }
            ShardCmd::Phase { lo_mask } => {
                5u8.encode(buf);
                lo_mask.encode(buf);
            }
            ShardCmd::Prob { mask, want } => {
                6u8.encode(buf);
                mask.encode(buf);
                want.encode(buf);
            }
            ShardCmd::ParityProb { mask } => {
                7u8.encode(buf);
                mask.encode(buf);
            }
            ShardCmd::Collapse { mask, want } => {
                8u8.encode(buf);
                mask.encode(buf);
                want.encode(buf);
            }
            ShardCmd::CollapseParity { mask, want_odd } => {
                9u8.encode(buf);
                mask.encode(buf);
                want_odd.encode(buf);
            }
            ShardCmd::Scale { factor } => {
                10u8.encode(buf);
                factor.encode(buf);
            }
            ShardCmd::Shutdown => 11u8.encode(buf),
            ShardCmd::Die => 12u8.encode(buf),
        }
    }
}

impl Decode for ShardCmd {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => ShardCmd::Load {
                shard_index: usize::decode(buf)?,
                local_bits: usize::decode(buf)?,
                amps: decode_amps(buf)?,
            },
            1 => ShardCmd::Gather,
            2 => ShardCmd::PairWithin {
                c_lo: usize::decode(buf)?,
                tbit: usize::decode(buf)?,
                kernel: PairKernel::decode(buf)?,
            },
            3 => ShardCmd::PairCrossLow {
                partner: usize::decode(buf)?,
                c_lo: usize::decode(buf)?,
                kernel: PairKernel::decode(buf)?,
            },
            4 => ShardCmd::PairCrossHigh {
                partner: usize::decode(buf)?,
            },
            5 => ShardCmd::Phase {
                lo_mask: usize::decode(buf)?,
            },
            6 => ShardCmd::Prob {
                mask: usize::decode(buf)?,
                want: usize::decode(buf)?,
            },
            7 => ShardCmd::ParityProb {
                mask: usize::decode(buf)?,
            },
            8 => ShardCmd::Collapse {
                mask: usize::decode(buf)?,
                want: usize::decode(buf)?,
            },
            9 => ShardCmd::CollapseParity {
                mask: usize::decode(buf)?,
                want_odd: bool::decode(buf)?,
            },
            10 => ShardCmd::Scale {
                factor: f64::decode(buf)?,
            },
            11 => ShardCmd::Shutdown,
            12 => ShardCmd::Die,
            _ => return None,
        })
    }
}

/// One reply from a shard worker to the controller.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardReply {
    /// A partial reduction value (probability mass, kept norm).
    Partial(f64),
    /// The worker's stripe (gather).
    Amps(Vec<Complex>),
}

impl Encode for ShardReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ShardReply::Partial(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            ShardReply::Amps(amps) => {
                1u8.encode(buf);
                encode_amps(amps, buf);
            }
        }
    }
}

impl Decode for ShardReply {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => f64::decode(buf).map(ShardReply::Partial),
            1 => decode_amps(buf).map(ShardReply::Amps),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker event loop
// ---------------------------------------------------------------------------

/// The mailbox-driven event loop each shard worker runs: receive one
/// [`ShardCmd`] from the controller, execute it against the owned stripe,
/// loop until shutdown. Commands arrive in the controller's global send
/// order (cmpi FIFO), so the stripe observes one consistent history.
fn shard_worker(comm: Communicator, watchdog: Arc<AtomicU64>) {
    let mut amps: Vec<Complex> = Vec::new();
    let mut base: usize = 0;
    let recv_xchg = |comm: &Communicator, partner: usize, what: &str| -> Vec<Complex> {
        let wd = Duration::from_millis(watchdog.load(Ordering::Relaxed));
        match comm.recv_timeout::<WireAmps>(partner, TAG_XCHG, wd) {
            Some((w, _)) => w.0,
            None => panic!(
                "remote-shard watchdog: worker {} waited {wd:?} for {what} from \
                 partner {partner}; the partner is presumed dead or deadlocked",
                comm.rank()
            ),
        }
    };
    loop {
        let (cmd, _) = comm.recv::<ShardCmd>(CONTROLLER, TAG_CMD);
        match cmd {
            ShardCmd::Load {
                shard_index,
                local_bits,
                amps: stripe_amps,
            } => {
                base = shard_index << local_bits;
                amps = stripe_amps;
            }
            ShardCmd::Gather => {
                comm.send(&ShardReply::Amps(amps.clone()), CONTROLLER, TAG_REPLY);
            }
            ShardCmd::PairWithin { c_lo, tbit, kernel } => {
                kernel.apply_within(&mut amps, c_lo, tbit);
            }
            ShardCmd::PairCrossLow {
                partner,
                c_lo,
                kernel,
            } => {
                let mut b = recv_xchg(&comm, partner, "its stripe half");
                kernel.apply_across(&mut amps, &mut b, c_lo);
                comm.send(&WireAmps(b), partner, TAG_XCHG);
            }
            ShardCmd::PairCrossHigh { partner } => {
                comm.send(&WireAmps(std::mem::take(&mut amps)), partner, TAG_XCHG);
                amps = recv_xchg(&comm, partner, "the updated stripe half");
            }
            ShardCmd::Phase { lo_mask } => stripe::phase_flip(&mut amps, lo_mask),
            ShardCmd::Prob { mask, want } => {
                let p = stripe::masked_norm(&amps, base, mask, want);
                comm.send(&ShardReply::Partial(p), CONTROLLER, TAG_REPLY);
            }
            ShardCmd::ParityProb { mask } => {
                let p = stripe::parity_prob_odd(&amps, base, mask);
                comm.send(&ShardReply::Partial(p), CONTROLLER, TAG_REPLY);
            }
            ShardCmd::Collapse { mask, want } => {
                let kept = stripe::collapse_keep(&mut amps, base, mask, want);
                comm.send(&ShardReply::Partial(kept), CONTROLLER, TAG_REPLY);
            }
            ShardCmd::CollapseParity { mask, want_odd } => {
                let kept = stripe::collapse_parity(&mut amps, base, mask, want_odd);
                comm.send(&ShardReply::Partial(kept), CONTROLLER, TAG_REPLY);
            }
            ShardCmd::Scale { factor } => stripe::scale(&mut amps, factor),
            ShardCmd::Shutdown | ShardCmd::Die => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// The controller half of the shard protocol: the worker-world rank-0
/// communicator plus the shard layout bookkeeping. All sends for one
/// logical operation happen while the engine holds the controller lock, so
/// every worker sees commands in the same global order.
struct Controller {
    comm: Communicator,
    group: Option<WorkerGroup>,
    /// Watchdog in milliseconds, shared with every worker's exchange waits
    /// so [`RemoteShardedEngine::with_watchdog`] reaches both sides.
    watchdog: Arc<AtomicU64>,
    /// Live qubit positions (mirrors the registry length).
    n_qubits: usize,
    /// Active shard-index bits: `min(max_shard_bits, n_qubits)`.
    shard_bits: u32,
    /// Configured shard-count exponent.
    max_shard_bits: u32,
}

impl Controller {
    /// Total worker count (`2^k`).
    fn workers(&self) -> usize {
        1 << self.max_shard_bits
    }

    /// Currently active shard count (`2^min(k, n)`).
    fn active(&self) -> usize {
        1 << self.shard_bits
    }

    /// Index bits addressing within a stripe.
    fn local_bits(&self) -> usize {
        self.n_qubits - self.shard_bits as usize
    }

    /// World rank of shard `s`'s worker.
    fn rank_of(&self, shard: usize) -> usize {
        shard + 1
    }

    fn send_to(&self, shard: usize, cmd: &ShardCmd) {
        self.comm.send(cmd, self.rank_of(shard), TAG_CMD);
    }

    /// The current watchdog duration.
    fn watchdog(&self) -> Duration {
        Duration::from_millis(self.watchdog.load(Ordering::Relaxed))
    }

    /// Receives shard `s`'s reply, failing loudly on watchdog expiry.
    fn reply_from(&self, shard: usize, what: &str) -> ShardReply {
        let wd = self.watchdog();
        match self
            .comm
            .recv_timeout::<ShardReply>(self.rank_of(shard), TAG_REPLY, wd)
        {
            Some((r, _)) => r,
            None => panic!(
                "remote-shard watchdog: no {what} reply from shard {shard}'s worker within \
                 {wd:?}; the worker is presumed dead or deadlocked"
            ),
        }
    }

    fn partial_from(&self, shard: usize, what: &str) -> f64 {
        match self.reply_from(shard, what) {
            ShardReply::Partial(v) => v,
            other => panic!("shard {shard} sent {other:?} where a partial was expected"),
        }
    }

    /// Fans a query command out to every active shard and sums the partial
    /// replies in shard order.
    fn reduce_partials(&self, cmd: &ShardCmd, what: &str) -> f64 {
        for s in 0..self.active() {
            self.send_to(s, cmd);
        }
        (0..self.active()).map(|s| self.partial_from(s, what)).sum()
    }

    /// Gathers every active stripe into one dense vector (shards are
    /// contiguous global index ranges, so this is an append in shard
    /// order). Non-destructive: workers keep their stripes.
    fn gather(&self) -> Vec<Complex> {
        for s in 0..self.active() {
            self.send_to(s, &ShardCmd::Gather);
        }
        let mut flat = Vec::with_capacity(1usize << self.n_qubits);
        for s in 0..self.active() {
            match self.reply_from(s, "gather") {
                ShardReply::Amps(a) => flat.extend(a),
                other => panic!("shard {s} sent {other:?} where a stripe was expected"),
            }
        }
        flat
    }

    /// Recomputes the shard layout for `n_qubits` and distributes `flat`
    /// across the workers (inactive workers get an empty stripe).
    fn scatter(&mut self, mut flat: Vec<Complex>, n_qubits: usize) {
        debug_assert_eq!(flat.len(), 1usize << n_qubits);
        self.n_qubits = n_qubits;
        self.shard_bits = self.max_shard_bits.min(n_qubits as u32);
        let local_bits = self.local_bits();
        let len = flat.len() >> self.shard_bits;
        for s in 0..self.workers() {
            let amps = if s < self.active() {
                let rest = flat.split_off(len);
                std::mem::replace(&mut flat, rest)
            } else {
                Vec::new()
            };
            self.send_to(
                s,
                &ShardCmd::Load {
                    shard_index: s,
                    local_bits,
                    amps,
                },
            );
        }
    }

    /// Splits a set of global qubit positions into (within-stripe,
    /// shard-index) masks.
    fn split_masks(&self, positions: &[usize]) -> (usize, usize) {
        let l = self.local_bits();
        let mut lo = 0usize;
        let mut hi = 0usize;
        for &p in positions {
            assert!(p < self.n_qubits, "position {p} out of range");
            if p < l {
                lo |= 1 << p;
            } else {
                hi |= 1 << (p - l);
            }
        }
        (lo, hi)
    }

    /// Dispatches one pair gate: within-shard targets broadcast a local
    /// pass, cross-shard targets set up the stripe-pair exchange.
    fn pair_gate(&self, c_lo: usize, c_hi: usize, target: usize, kernel: PairKernel) {
        let l = self.local_bits();
        if target < l {
            let tbit = 1usize << target;
            for s in 0..self.active() {
                if s & c_hi == c_hi {
                    self.send_to(s, &ShardCmd::PairWithin { c_lo, tbit, kernel });
                }
            }
        } else {
            let tbit = 1usize << (target - l);
            for s0 in 0..self.active() {
                if s0 & tbit != 0 || s0 & c_hi != c_hi {
                    continue;
                }
                let s1 = s0 | tbit;
                self.send_to(
                    s0,
                    &ShardCmd::PairCrossLow {
                        partner: self.rank_of(s1),
                        c_lo,
                        kernel,
                    },
                );
                self.send_to(
                    s1,
                    &ShardCmd::PairCrossHigh {
                        partner: self.rank_of(s0),
                    },
                );
            }
        }
    }

    /// Dispatches a diagonal phase pass (CZ) to the matching shards.
    fn phase_gate(&self, lo_mask: usize, hi_mask: usize) {
        for s in 0..self.active() {
            if s & hi_mask == hi_mask {
                self.send_to(s, &ShardCmd::Phase { lo_mask });
            }
        }
    }

    /// Two-phase projective collapse onto `want` under `mask`: zero the
    /// complement, reduce the kept mass, broadcast the rescale.
    fn collapse(&self, mask: usize, want: usize) -> f64 {
        let norm = self.reduce_partials(&ShardCmd::Collapse { mask, want }, "collapse");
        assert!(norm > 1e-12, "collapsing onto probability-zero outcome");
        let inv = 1.0 / norm.sqrt();
        for s in 0..self.active() {
            self.send_to(s, &ShardCmd::Scale { factor: inv });
        }
        norm
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Full state-vector engine whose `2^k` amplitude shards live in dedicated
/// worker ranks and exchange nothing but [`cmpi`] messages. See the module
/// docs for the protocol; see [`super::ShardedStateVector`] for the
/// in-process analogue with the same observable semantics.
pub struct RemoteShardedEngine {
    ctl: Mutex<Controller>,
    /// Stable handle <-> position bookkeeping, shared with the other
    /// amplitude engines via [`qsim::registry`].
    reg: QubitRegistry,
    rng: StdRng,
    /// Controller-side noise sampling; same stream seeding as the dense
    /// engine, so single-threaded trajectories are bit-identical.
    noise: Mutex<NoiseState>,
    noise_model: NoiseModel,
    gate_count: AtomicU64,
    measurement_count: u64,
}

impl RemoteShardedEngine {
    /// Spawns the worker ranks for a noiseless engine. `shards` is rounded
    /// up to a power of two and clamped to `[1, 2^MAX_REMOTE_SHARD_BITS]`.
    pub fn new(seed: u64, shards: usize) -> Self {
        RemoteShardedEngine::with_noise(seed, shards, NoiseModel::ideal())
    }

    /// Spawns the worker ranks for an engine applying `noise` as
    /// controller-sampled trajectory insertions.
    pub fn with_noise(seed: u64, shards: usize, noise: NoiseModel) -> Self {
        let shards = shards
            .clamp(1, 1 << MAX_REMOTE_SHARD_BITS)
            .next_power_of_two();
        let watchdog = Arc::new(AtomicU64::new(watchdog_from_env().as_millis() as u64));
        let worker_watchdog = Arc::clone(&watchdog);
        let (comm, group) = Universe::spawn_workers(shards, move |c| {
            shard_worker(c, Arc::clone(&worker_watchdog))
        });
        let mut ctl = Controller {
            comm,
            group: Some(group),
            watchdog,
            n_qubits: 0,
            shard_bits: 0,
            max_shard_bits: shards.trailing_zeros(),
        };
        // The 0-qubit scalar state |> with amplitude 1.
        ctl.scatter(vec![Complex::real(1.0)], 0);
        RemoteShardedEngine {
            ctl: Mutex::new(ctl),
            reg: QubitRegistry::new(),
            rng: StdRng::seed_from_u64(seed),
            noise: Mutex::new(NoiseState::new(seed, noise)),
            noise_model: noise,
            gate_count: AtomicU64::new(0),
            measurement_count: 0,
        }
    }

    /// Overrides the watchdog for every blocking protocol receive —
    /// controller reply waits and worker exchange waits alike (the duration
    /// is shared atomically with the workers). Tests use a short one to
    /// prove timeouts diagnose instead of hang.
    pub fn with_watchdog(self, watchdog: Duration) -> Self {
        self.ctl
            .lock()
            .watchdog
            .store(watchdog.as_millis() as u64, Ordering::Relaxed);
        self
    }

    /// The configured worker/shard count.
    pub fn max_shards(&self) -> usize {
        self.ctl.lock().workers()
    }

    /// Test/diagnostic hook: makes shard `shard`'s worker exit its event
    /// loop *without* completing the protocol, simulating a crashed shard
    /// node. Subsequent operations touching that shard trip the deadlock
    /// watchdog instead of hanging.
    pub fn debug_kill_worker(&self, shard: usize) {
        let ctl = self.ctl.lock();
        assert!(shard < ctl.workers(), "shard {shard} out of range");
        ctl.send_to(shard, &ShardCmd::Die);
    }

    fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.reg.pos(q)
    }

    #[inline]
    fn count_gate(&self) {
        self.gate_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Uncounted single-qubit matrix application (noise insertions).
    fn gate_1q_at(&self, pos: usize, m: &Mat2) {
        let ctl = self.ctl.lock();
        ctl.pair_gate(0, 0, pos, PairKernel::Mat(*m));
    }

    /// Probability of |1> at a raw position (noise sampling, frees).
    fn prob_at(&self, pos: usize) -> f64 {
        let ctl = self.ctl.lock();
        let bit = 1usize << pos;
        ctl.reduce_partials(
            &ShardCmd::Prob {
                mask: bit,
                want: bit,
            },
            "probability",
        )
    }

    /// Samples and applies the `class` channel to each listed position —
    /// the same sequencing as the in-process engines (see
    /// `ShardedStateVector::inject`), with the amplitude work expressed as
    /// shard commands.
    fn inject(&self, class: OpClass, positions: &[usize]) {
        let ch = self.noise_model.channel(class);
        if ch.is_ideal() {
            return;
        }
        if matches!(ch, qsim::NoiseChannel::AmplitudeDamping { .. }) {
            let mut guard = self.noise.lock();
            for &pos in positions {
                let action = guard.sample(class, || self.prob_at(pos));
                match action {
                    ChannelAction::Nothing => {}
                    ChannelAction::Pauli(p) => self.gate_1q_at(pos, &p.matrix()),
                    ChannelAction::Kraus(m) => self.gate_1q_at(pos, &m),
                }
            }
            return;
        }
        let actions: Vec<(usize, ChannelAction)> = {
            let mut guard = self.noise.lock();
            positions
                .iter()
                .map(|&pos| {
                    (
                        pos,
                        guard.sample(class, || {
                            unreachable!("Pauli channels never query prob_one")
                        }),
                    )
                })
                .collect()
        };
        for (pos, action) in actions {
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => self.gate_1q_at(pos, &p.matrix()),
                ChannelAction::Kraus(_) => unreachable!("Pauli channels never produce Kraus maps"),
            }
        }
    }

    /// Gathers, removes a collapsed qubit from the flat vector, rebuilds.
    fn remove_at(&mut self, q: QubitId, pos: usize, outcome: bool) {
        let ctl = self.ctl.get_mut();
        let flat = ctl.gather();
        let (mut out, dropped) = stripe::remove_qubit_flat(&flat, pos, outcome);
        assert!(
            dropped < NORM_TOL,
            "removing qubit position {pos} with outcome {outcome} would discard {dropped:.3e} \
             probability; collapse it first"
        );
        let norm: f64 = out.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot renormalize the zero vector");
        stripe::scale(&mut out, 1.0 / norm);
        let n = ctl.n_qubits - 1;
        ctl.scatter(out, n);
        self.reg.remove(q, pos);
    }
}

impl Drop for RemoteShardedEngine {
    fn drop(&mut self) {
        let ctl = self.ctl.get_mut();
        for s in 0..ctl.workers() {
            ctl.send_to(s, &ShardCmd::Shutdown);
        }
        if let Some(group) = ctl.group.take() {
            // Never propagate from a destructor (unwinding here would
            // abort), but a worker that panicked mid-run may have silently
            // dropped fire-and-forget gate commands — say so.
            let panicked = group.join();
            if panicked > 0 {
                eprintln!(
                    "remote-shard engine: {panicked} shard worker(s) panicked during the run; \
                     results involving their stripes are suspect"
                );
            }
        }
    }
}

impl super::ShardableEngine for RemoteShardedEngine {
    fn apply_concurrent(&self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        {
            let ctl = self.ctl.lock();
            ctl.pair_gate(0, 0, pos, PairKernel::Mat(gate.matrix()));
        }
        self.count_gate();
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    fn apply_controlled_concurrent(
        &self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        let tpos = self.pos(target)?;
        let mut cpos = Vec::with_capacity(controls.len());
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
            cpos.push(self.pos(c)?);
        }
        {
            let ctl = self.ctl.lock();
            let (c_lo, c_hi) = ctl.split_masks(&cpos);
            ctl.pair_gate(c_lo, c_hi, tpos, PairKernel::Mat(gate.matrix()));
        }
        self.count_gate();
        cpos.push(tpos);
        self.inject(OpClass::Gate2q, &cpos);
        Ok(())
    }

    fn cnot_concurrent(&self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        if c == t {
            return Err(SimError::DuplicateQubit(c));
        }
        let cp = self.pos(c)?;
        let tp = self.pos(t)?;
        {
            let ctl = self.ctl.lock();
            let (c_lo, c_hi) = ctl.split_masks(&[cp]);
            ctl.pair_gate(c_lo, c_hi, tp, PairKernel::Swap);
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[cp, tp]);
        Ok(())
    }

    fn cz_concurrent(&self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        {
            let ctl = self.ctl.lock();
            let (lo_mask, hi_mask) = ctl.split_masks(&[pa, pb]);
            ctl.phase_gate(lo_mask, hi_mask);
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    fn swap_concurrent(&self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        {
            // SWAP = three CNOTs, issued in one controller acquisition so
            // every worker sees them back-to-back — the same realization
            // ShardedState::apply_swap uses, keeping the two sharded
            // deployments pass-for-pass identical (a dedicated one-round
            // swap exchange is a known follow-on, see ROADMAP).
            let ctl = self.ctl.lock();
            for (c, t) in [(pa, pb), (pb, pa), (pa, pb)] {
                let (c_lo, c_hi) = ctl.split_masks(&[c]);
                ctl.pair_gate(c_lo, c_hi, t, PairKernel::Swap);
            }
        }
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }
}

impl super::SimEngine for RemoteShardedEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::RemoteSharded {
            shards: self.max_shards(),
        }
    }

    fn noise(&self) -> NoiseModel {
        self.noise_model
    }

    fn alloc(&mut self) -> QubitId {
        let ctl = self.ctl.get_mut();
        assert!(ctl.n_qubits < 29, "qubit budget exhausted");
        let pos = ctl.n_qubits;
        let mut flat = ctl.gather();
        flat.resize(flat.len() * 2, Complex::default());
        ctl.scatter(flat, pos + 1);
        self.reg.push(pos)
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        let outcome = qsim::registry::classical_outcome(q, self.prob_at(pos))?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let outcome = self.measure(q)?;
        let pos = self.pos(q)?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.apply_concurrent(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.apply_controlled_concurrent(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.cnot_concurrent(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.cz_concurrent(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        use super::ShardableEngine;
        self.swap_concurrent(a, b)
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        self.inject(OpClass::Measurement, &[pos]);
        self.measurement_count += 1;
        let p1 = self.prob_at(pos);
        let outcome = self.rng.gen::<f64>() < p1;
        let ctl = self.ctl.get_mut();
        let bit = 1usize << pos;
        ctl.collapse(bit, if outcome { bit } else { 0 });
        Ok(outcome)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        Ok(self.prob_at(self.pos(q)?))
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        let mut pos = Vec::with_capacity(qubits.len());
        for &q in qubits {
            pos.push(self.pos(q)?);
        }
        self.inject(OpClass::Measurement, &pos);
        self.measurement_count += 1;
        let mut mask = 0usize;
        for &p in &pos {
            mask |= 1usize << p;
        }
        let ctl = self.ctl.get_mut();
        let p_odd = ctl.reduce_partials(&ShardCmd::ParityProb { mask }, "parity probability");
        let want_odd = self.rng.gen::<f64>() < p_odd;
        let norm = ctl.reduce_partials(
            &ShardCmd::CollapseParity { mask, want_odd },
            "parity collapse",
        );
        let inv = 1.0 / norm.sqrt();
        for s in 0..ctl.active() {
            ctl.send_to(s, &ShardCmd::Scale { factor: inv });
        }
        Ok(want_odd)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        let mut mapped = Vec::with_capacity(terms.len());
        for &(q, op) in terms {
            mapped.push(qsim::measure::PauliTerm {
                qubit: self.pos(q)?,
                op,
            });
        }
        let ctl = self.ctl.lock();
        let flat = ctl.gather();
        Ok(stripe::expectation_pauli(
            ctl.n_qubits,
            |g| flat[g],
            &mapped,
        ))
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        let flat = self.ctl.lock().gather();
        Ok(State::from_amplitudes(flat).permuted(&self.reg.permutation(order)?))
    }

    fn n_qubits(&self) -> usize {
        self.reg.len()
    }

    fn gate_count(&self) -> u64 {
        self.gate_count.load(Ordering::Relaxed)
    }

    fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        // Same H + CNOT realization (and gate tally) as the other engines,
        // with interconnect noise drawn from the dedicated EPR channel.
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        {
            let ctl = self.ctl.lock();
            ctl.pair_gate(0, 0, pa, PairKernel::Mat(Gate::H.matrix()));
            let (c_lo, c_hi) = ctl.split_masks(&[pa]);
            ctl.pair_gate(c_lo, c_hi, pb, PairKernel::Swap);
        }
        self.gate_count.fetch_add(2, Ordering::Relaxed);
        self.inject(OpClass::Epr, &[pa, pb]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{QuantumBackend, SimEngine, StateVectorEngine};

    #[test]
    fn shard_cmd_roundtrips_every_variant() {
        let mat = Gate::Ry(0.37).matrix();
        let amps = vec![Complex::new(0.25, -1.5), Complex::new(0.0, 3.0)];
        let cmds = [
            ShardCmd::Load {
                shard_index: 3,
                local_bits: 7,
                amps: amps.clone(),
            },
            ShardCmd::Load {
                shard_index: 5,
                local_bits: 0,
                amps: vec![],
            },
            ShardCmd::Gather,
            ShardCmd::PairWithin {
                c_lo: 0b101,
                tbit: 1 << 4,
                kernel: PairKernel::Mat(mat),
            },
            ShardCmd::PairWithin {
                c_lo: 0,
                tbit: 1,
                kernel: PairKernel::Swap,
            },
            ShardCmd::PairCrossLow {
                partner: 9,
                c_lo: 0b11,
                kernel: PairKernel::Mat(mat),
            },
            ShardCmd::PairCrossHigh { partner: 2 },
            ShardCmd::Phase { lo_mask: 0b1001 },
            ShardCmd::Prob {
                mask: 0b100,
                want: 0b100,
            },
            ShardCmd::ParityProb { mask: 0b111 },
            ShardCmd::Collapse {
                mask: 0b10,
                want: 0,
            },
            ShardCmd::CollapseParity {
                mask: 0b11,
                want_odd: true,
            },
            ShardCmd::Scale { factor: 1.25 },
            ShardCmd::Shutdown,
            ShardCmd::Die,
        ];
        for cmd in cmds {
            let bytes = cmpi::to_bytes(&cmd);
            let back: ShardCmd = cmpi::from_bytes(&bytes).expect("decode");
            assert_eq!(back, cmd);
        }
    }

    #[test]
    fn shard_reply_roundtrips() {
        for reply in [
            ShardReply::Partial(0.625),
            ShardReply::Partial(f64::MIN_POSITIVE),
            ShardReply::Amps(vec![Complex::new(1.0, -2.0); 5]),
            ShardReply::Amps(vec![]),
        ] {
            let bytes = cmpi::to_bytes(&reply);
            let back: ShardReply = cmpi::from_bytes(&bytes).expect("decode");
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn corrupt_payloads_rejected() {
        // Unknown discriminant.
        let bad = Bytes::from_static(&[99]);
        assert!(cmpi::from_bytes::<ShardCmd>(&bad).is_none());
        // Truncated matrix.
        let mut buf = BytesMut::new();
        2u8.encode(&mut buf); // PairWithin
        0usize.encode(&mut buf);
        1usize.encode(&mut buf);
        1u8.encode(&mut buf); // Mat kernel, but no matrix bytes follow
        assert!(cmpi::from_bytes::<ShardCmd>(&buf.freeze()).is_none());
        // Amplitude count larger than the payload.
        let mut buf = BytesMut::new();
        1u8.encode(&mut buf); // ShardReply::Amps
        usize::MAX.encode(&mut buf);
        assert!(cmpi::from_bytes::<ShardReply>(&buf.freeze()).is_none());
    }

    /// Applies the same circuit to the dense engine and a remote engine and
    /// asserts the amplitudes agree bit-for-bit (the kernels perform the
    /// identical arithmetic in the identical order).
    fn assert_remote_matches_dense_bitwise(shards: usize, noise: NoiseModel, n_qubits: usize) {
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut remote = RemoteShardedEngine::with_noise(1, shards, noise);
        let dq: Vec<QubitId> = (0..n_qubits).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..n_qubits).map(|_| remote.alloc()).collect();
        type Step = Box<dyn Fn(&mut dyn SimEngine, &[QubitId])>;
        let circuit: Vec<Step> = vec![
            Box::new(|e, q| e.apply(Gate::H, q[0]).unwrap()),
            Box::new(|e, q| e.apply(Gate::H, q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.apply(Gate::T, q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.cnot(q[0], q[q.len() - 1]).unwrap()),
            Box::new(|e, q| e.cnot(q[q.len() - 1], q[0]).unwrap()),
            Box::new(|e, q| e.cz(q[1], q[q.len() - 2]).unwrap()),
            Box::new(|e, q| e.apply(Gate::S, q[2]).unwrap()),
            Box::new(|e, q| e.swap(q[1], q[q.len() - 1]).unwrap()),
            Box::new(|e, q| {
                e.apply_controlled(&[q[0], q[q.len() - 1]], Gate::Ry(0.7), q[2])
                    .unwrap()
            }),
        ];
        for step in &circuit {
            step(&mut dense, &dq);
            step(&mut remote, &rq);
        }
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        assert_eq!(want.len(), got.len());
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "shards={shards} amp[{i}] differs: {w:?} vs {g:?}"
            );
        }
    }

    #[test]
    fn remote_matches_dense_bitwise_on_fixed_circuit() {
        for shards in [1usize, 2, 8] {
            assert_remote_matches_dense_bitwise(shards, NoiseModel::ideal(), 6);
        }
    }

    #[test]
    fn remote_matches_dense_bitwise_under_pauli_noise() {
        let noise = NoiseModel::depolarizing(0.25)
            .with_measurement(qsim::NoiseChannel::Dephasing { p: 0.3 });
        for shards in [1usize, 2, 4] {
            assert_remote_matches_dense_bitwise(shards, noise, 5);
        }
    }

    #[test]
    fn remote_measurement_and_free_roundtrip() {
        let mut e = RemoteShardedEngine::new(7, 4);
        let a = e.alloc();
        let b = e.alloc();
        let c = e.alloc();
        e.apply(Gate::X, c).unwrap();
        assert!((e.prob_one(c).unwrap() - 1.0).abs() < 1e-12);
        assert!(e.prob_one(a).unwrap() < 1e-12);
        // Removing the middle qubit shifts c down; it must still read |1>.
        assert!(!e.free(b).unwrap());
        assert!(e.measure_and_free(c).unwrap());
        assert!(!e.measure(a).unwrap());
        assert_eq!(e.n_qubits(), 1);
        assert_eq!(e.measurement_count(), 2);
    }

    #[test]
    fn remote_epr_pair_correlates() {
        for seed in 0..6u64 {
            let mut e = RemoteShardedEngine::new(seed, 2);
            let a = e.alloc();
            let b = e.alloc();
            e.entangle_epr(a, b).unwrap();
            let zz = e.expectation(&[(a, Pauli::Z), (b, Pauli::Z)]).unwrap();
            assert!((zz - 1.0).abs() < 1e-10, "seed {seed}: <ZZ> = {zz}");
            let ma = e.measure(a).unwrap();
            let mb = e.measure(b).unwrap();
            assert_eq!(ma, mb, "seed {seed}: EPR halves must agree");
        }
    }

    #[test]
    fn remote_parity_measurement_projects() {
        let mut e = RemoteShardedEngine::new(11, 4);
        let a = e.alloc();
        let b = e.alloc();
        e.apply(Gate::H, a).unwrap();
        e.cnot(a, b).unwrap();
        // EPR pair lives entirely in the even-parity subspace.
        assert!(!e.measure_z_parity(&[a, b]).unwrap());
        let st = e.state_vector(&[a, b]).unwrap();
        assert!((st.probability(0b00) - 0.5).abs() < 1e-10);
        assert!((st.probability(0b11) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn remote_amplitude_damping_tracks_dense_on_fixed_circuit() {
        // The jump decision reads prob_one, whose reduction order differs
        // between engines; a fixed seed and circuit keeps both on the same
        // trajectory branch, and the Kraus maps must then agree closely.
        let noise = NoiseModel::amplitude_damping(0.2);
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut remote = RemoteShardedEngine::with_noise(1, 4, noise);
        let dq: Vec<QubitId> = (0..4).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..4).map(|_| remote.alloc()).collect();
        for (d, r) in [(0, 0), (1, 1)] {
            dense.apply(Gate::H, dq[d]).unwrap();
            remote.apply(Gate::H, rq[r]).unwrap();
        }
        dense.cnot(dq[0], dq[2]).unwrap();
        remote.cnot(rq[0], rq[2]).unwrap();
        dense.apply(Gate::Ry(0.9), dq[1]).unwrap();
        remote.apply(Gate::Ry(0.9), rq[1]).unwrap();
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        for i in 0..want.len() {
            assert!(
                want.amplitude(i).approx_eq(got.amplitude(i), 1e-12),
                "amp[{i}]: {:?} vs {:?}",
                want.amplitude(i),
                got.amplitude(i)
            );
        }
    }

    #[test]
    fn watchdog_diagnoses_dead_worker_instead_of_hanging() {
        let start = std::time::Instant::now();
        let e = RemoteShardedEngine::new(3, 2).with_watchdog(Duration::from_millis(200));
        let mut e = e;
        let a = e.alloc();
        let b = e.alloc();
        e.apply(Gate::H, a).unwrap();
        // Kill shard 1's worker, then run a reduction that needs it.
        e.debug_kill_worker(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.prob_one(b).unwrap();
        }))
        .expect_err("query against a dead worker must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("watchdog"),
            "panic must carry the watchdog diagnostic, got: {msg}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog must fire promptly, not hang"
        );
        drop(e); // shutdown must still reap the surviving workers
    }

    #[test]
    fn remote_backend_kind_builds_under_sharded_shared() {
        let backend = BackendKind::RemoteSharded { shards: 4 }.build(5);
        assert_eq!(backend.kind(), BackendKind::RemoteSharded { shards: 4 });
        let qa = backend.alloc(0, 1)[0];
        let qb = backend.alloc(1, 1)[0];
        backend.entangle_epr(qa, qb).unwrap();
        let ma = backend.measure(0, qa).unwrap();
        let mb = backend.measure(1, qb).unwrap();
        assert_eq!(ma, mb);
        assert_eq!(backend.counts().epr_entanglements, 1);
    }

    #[test]
    fn wrapper_runs_concurrent_rank_gates_against_workers() {
        use std::sync::Arc;
        let backend: Arc<dyn QuantumBackend> = BackendKind::RemoteSharded { shards: 4 }.build(3);
        let mut qubits = Vec::new();
        for rank in 0..4usize {
            qubits.push((rank, backend.alloc(rank, 2)));
        }
        std::thread::scope(|s| {
            for (rank, qs) in &qubits {
                let backend = Arc::clone(&backend);
                s.spawn(move || {
                    for _ in 0..10 {
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                    }
                });
            }
        });
        // Every rank's round was self-inverse: all qubits must read |0>.
        for (rank, qs) in &qubits {
            for &q in qs {
                assert!(backend.prob_one(*rank, q).unwrap() < 1e-9);
                backend.measure_and_free(*rank, q).unwrap();
            }
        }
        assert_eq!(backend.counts().live_qubits, 0);
    }
}
