//! Pluggable simulation backends behind one QMPI execution API.
//!
//! The paper's prototype (Section 6) forwards every quantum operation to a
//! single full state-vector simulator, which caps any run at ~25 total
//! qubits. But nearly every QMPI protocol — EPR distribution, teleportation,
//! cat-state broadcast, parity reduce — is pure Clifford, and the headline
//! results (Tables 1–3) are *resource estimates* at scales no state vector
//! can reach. This module therefore splits the execution core into three
//! layers:
//!
//! * [`SimEngine`] — the minimal, ownership-agnostic engine contract
//!   (allocate, gate, measure, diagnose). Three engines ship:
//!   [`statevector::StateVectorEngine`] (exact amplitudes, the paper's
//!   prototype), [`stabilizer::StabilizerEngine`] (CHP tableau; Clifford
//!   protocols at thousands of ranks), and [`trace::TraceEngine`] (no
//!   amplitudes at all — pure operation counting for Table 1–3-style
//!   resource estimation at paper scale).
//! * [`SimEngine`] implementations also include
//!   [`sparse::SparseEngine`] (exact amplitudes stored sparsely — only
//!   nonzero entries — so structured states carry real amplitudes at
//!   hundreds of ranks), [`sharded::ShardedStateVector`] (exact amplitudes
//!   over a lock-striped shard array, built for concurrent gate dispatch)
//!   and [`remote::RemoteShardedEngine`] (exact amplitudes over shards
//!   owned by dedicated worker ranks that exchange nothing but [`cmpi`]
//!   messages — the paper's process-separated deployment model).
//! * [`Shared`] — the mutex locality wrapper: one lock-guarded engine plus
//!   the qubit-ownership registry. Every engine gets the paper's locality
//!   semantics for free — a multi-qubit gate across ranks is rejected with
//!   [`QmpiError::Locality`], so algorithm code must communicate via QMPI
//!   exactly as on real distributed hardware. The only cross-rank quantum
//!   operation is [`QuantumBackend::entangle_epr`], modeling the
//!   quantum-coherent interconnect. [`sharded::ShardedShared`] is the
//!   second locality wrapper: the same ownership registry behind a
//!   reader-writer lock, so gate traffic from many ranks proceeds
//!   concurrently and only structural operations serialize.
//! * [`QuantumBackend`] — the rank-aware trait object held by every
//!   `QmpiRank`. Select an implementation per world via
//!   [`crate::QmpiConfig::backend`] and [`BackendKind`].
//!
//! Every engine additionally accepts a [`qsim::noise::NoiseModel`]
//! (threaded through [`build_backend`] from
//! [`crate::QmpiConfig::noise`]): the stochastic engines sample seeded
//! Pauli/Kraus insertions, the stabilizer engine runs the
//! Clifford-compatible Pauli subset, and the trace engine folds the rates
//! into a modeled fidelity ([`QuantumBackend::modeled_fidelity`]). See
//! `docs/NOISE.md` for channel definitions and conventions.
//!
//! The single-mutex acquisition mirrors the prototype's "all ranks forward
//! quantum operations to rank 0" — identical serialization semantics, and
//! the engine's global state faithfully represents the distributed machine
//! at every point. The sharded wrapper keeps the same observable semantics
//! while letting gates on disjoint qubits (which locality guarantees across
//! ranks) execute in parallel.

pub mod remote;
pub mod remote_transport;
pub mod sharded;
pub mod sparse;
pub mod stabilizer;
pub mod statevector;
pub mod trace;

use crate::error::{QmpiError, Result};
use cmpi::TransportKind;
use parking_lot::Mutex;
use qsim::noise::NoiseModel;
use qsim::{BatchOp, Gate, GateBatch, Pauli, QubitId, State};
use std::collections::HashMap;
use std::sync::Arc;

pub use remote::{RemoteShardedEngine, ShardLease, ShardWorkerPool};
pub use remote_transport::{qworker_main, ProcessShardLease, ProcessWorkerPool};
pub use sharded::{ShardableEngine, ShardedShared, ShardedStateVector};
pub use sparse::SparseEngine;
pub use stabilizer::StabilizerEngine;
pub use statevector::StateVectorEngine;
pub use trace::TraceEngine;

/// Which simulation engine backs a QMPI world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Full state-vector simulation (exact amplitudes, ~25-qubit cap) —
    /// the paper's prototype engine and the default.
    #[default]
    StateVector,
    /// CHP stabilizer tableau: Clifford-only, polynomial in qubit count.
    /// Runs every QMPI communication protocol, at thousands of ranks.
    Stabilizer,
    /// No amplitudes at all: gates and measurements only count. Measurement
    /// outcomes are fixed `false`, so protocols execute deterministically
    /// and the resource ledger reproduces the paper's Tables 1–3 at any
    /// scale.
    Trace,
    /// Sparse full-state simulation: only nonzero amplitudes are stored, in
    /// a map keyed by 512-bit basis state. Exact for arbitrary gates like
    /// the dense engine (bit-identical under the canonical rule documented
    /// in [`qsim::sparse`]), but memory scales with the number of *nonzero*
    /// amplitudes instead of `2^n` — structured states (cat/GHZ trees,
    /// teleport chains) run with real amplitudes at hundreds of ranks.
    Sparse,
    /// Full state-vector simulation over `shards` lock-striped amplitude
    /// shards behind a reader-writer locality wrapper: gates from many
    /// ranks run concurrently instead of serializing through one mutex.
    /// `shards` is rounded up to a power of two (clamped to `[1, 256]`).
    ShardedStateVector {
        /// Number of amplitude shards (= independent stripe locks).
        shards: usize,
    },
    /// Full state-vector simulation whose `shards` amplitude shards live in
    /// dedicated *worker ranks* — separate threads of control exchanging
    /// nothing but [`cmpi`] messages, the paper's actual deployment model.
    /// Same observable semantics (and bit-identical gate amplitudes) as the
    /// dense engines; higher per-gate latency, no shared-address-space
    /// assumption. `shards` is rounded up to a power of two (clamped to
    /// `[1, 64]`). See [`remote::RemoteShardedEngine`].
    RemoteSharded {
        /// Number of amplitude shards (= worker ranks).
        shards: usize,
    },
}

impl BackendKind {
    /// The shard/stripe count this kind will actually run with, after the
    /// rounding and clamping its engine constructor applies (`[1, 256]`
    /// stripes for the lock-striped engine, `[1, 64]` worker ranks for the
    /// process-separated one). `None` for the unsharded kinds.
    pub fn effective_shards(self) -> Option<usize> {
        // One normalization rule, shared with the engine constructors
        // (`ShardedState::new`, `RemoteShardedEngine::with_noise`), so the
        // clamp warning cannot drift from what the engines actually run.
        match self {
            BackendKind::ShardedStateVector { shards } => Some(qsim::sharded::normalize_shards(
                shards,
                qsim::sharded::MAX_SHARD_BITS,
            )),
            BackendKind::RemoteSharded { shards } => Some(qsim::sharded::normalize_shards(
                shards,
                remote::MAX_REMOTE_SHARD_BITS,
            )),
            _ => None,
        }
    }

    /// A human-readable warning when the configured shard count will not be
    /// honored as written (clamped to the engine's supported range or
    /// rounded to a power of two), `None` when the count is taken as-is.
    /// [`build_backend`] logs this to stderr so a request
    /// for, say, 128 remote workers visibly becomes 64 instead of silently
    /// shrinking.
    pub fn shard_clamp_warning(self) -> Option<String> {
        let effective = self.effective_shards()?;
        let requested = match self {
            BackendKind::ShardedStateVector { shards } | BackendKind::RemoteSharded { shards } => {
                shards
            }
            _ => return None,
        };
        if requested == effective {
            return None;
        }
        let cap = match self {
            BackendKind::RemoteSharded { .. } => 1usize << remote::MAX_REMOTE_SHARD_BITS,
            _ => 1usize << qsim::sharded::MAX_SHARD_BITS,
        };
        let what = if requested == 0 || requested > cap {
            format!("clamped to the supported range [1, {cap}]")
        } else {
            "rounded up to a power of two".to_string()
        };
        Some(format!(
            "{} backend: requested {requested} shard(s) {what}; running with {effective}",
            self.name()
        ))
    }

    /// Human-readable engine name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::StateVector => "state-vector",
            BackendKind::Stabilizer => "stabilizer",
            BackendKind::Trace => "trace",
            BackendKind::Sparse => "sparse",
            BackendKind::ShardedStateVector { .. } => "sharded-state-vector",
            BackendKind::RemoteSharded { .. } => "remote-sharded",
        }
    }
}

/// The default stripe count for the sharded state-vector backend: one per
/// available hardware thread, capped at 8, rounded up to a power of two.
pub fn auto_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
        .next_power_of_two()
}

/// The single backend construction point: builds a ready-to-share backend
/// of `kind` over `transport` with a noise model. Every other constructor
/// ([`crate::QmpiConfig::build_backend`], qserve's job launcher) funnels
/// through here.
///
/// The transport selects where shard workers live and only applies to
/// [`BackendKind::RemoteSharded`]: [`TransportKind::InProcess`] runs them
/// as threads over `cmpi` mailboxes, the multi-process kinds
/// ([`TransportKind::UnixSocket`], [`TransportKind::Tcp`]) spawn real
/// `qworker` child processes speaking framed sockets (with failover — see
/// [`remote_transport`]). Every other backend kind is transport-less and
/// ignores the parameter.
///
/// Fails with [`QmpiError::InvalidArgument`] when a noise rate is outside
/// `[0, 1]`, or when the stabilizer backend is paired with a non-Clifford
/// channel (amplitude damping) — the tableau can only realize Pauli noise
/// (depolarizing/dephasing).
pub fn build_backend(
    kind: BackendKind,
    transport: TransportKind,
    seed: u64,
    noise: NoiseModel,
) -> Result<Arc<dyn QuantumBackend>> {
    build_backend_with_policy(
        kind,
        transport,
        seed,
        noise,
        crate::context::BatchPolicy::env_default(),
    )
}

/// [`build_backend`] with an explicit [`crate::BatchPolicy`], which on the
/// sharded backends governs the cross-rank coalesce window
/// ([`ShardedShared`]): whether concurrent ranks' flushed plans merge into
/// shared per-worker frames (`policy.coalesce`) and the window's op / byte
/// / age budgets. Backends under the [`Shared`] mutex wrapper serialize
/// every flush anyway and ignore the policy. This is what
/// [`crate::QmpiConfig::build_backend`] calls, so a world's configured
/// policy reaches the backend it constructs.
pub fn build_backend_with_policy(
    kind: BackendKind,
    transport: TransportKind,
    seed: u64,
    noise: NoiseModel,
    policy: crate::context::BatchPolicy,
) -> Result<Arc<dyn QuantumBackend>> {
    noise.validate().map_err(QmpiError::InvalidArgument)?;
    if kind == BackendKind::Stabilizer && !noise.is_clifford() {
        return Err(QmpiError::InvalidArgument(
            "the stabilizer backend supports only Clifford-compatible Pauli noise \
             (depolarizing/dephasing); amplitude damping needs a state-vector backend"
                .into(),
        ));
    }
    if let Some(warning) = kind.shard_clamp_warning() {
        emit_clamp_warning_once(&warning);
    }
    Ok(match kind {
        BackendKind::StateVector => {
            Arc::new(Shared::new(StateVectorEngine::with_noise(seed, noise)))
        }
        BackendKind::Stabilizer => Arc::new(Shared::new(StabilizerEngine::with_noise(seed, noise))),
        BackendKind::Trace => Arc::new(Shared::new(TraceEngine::with_noise(noise))),
        BackendKind::Sparse => Arc::new(Shared::new(SparseEngine::with_noise(seed, noise))),
        BackendKind::ShardedStateVector { shards } => Arc::new(ShardedShared::with_policy(
            ShardedStateVector::with_noise(seed, shards, noise),
            policy,
        )),
        BackendKind::RemoteSharded { shards } if transport.is_multiprocess() => {
            Arc::new(ShardedShared::with_policy(
                RemoteShardedEngine::over_transport(seed, shards, noise, transport),
                policy,
            ))
        }
        BackendKind::RemoteSharded { shards } => Arc::new(ShardedShared::with_policy(
            RemoteShardedEngine::with_noise(seed, shards, noise),
            policy,
        )),
    })
}

/// Once-per-process latch for the shard-clamp warning. Module-scoped (not
/// function-local) so tests can reset it and observe the emit/suppress
/// transition regardless of which test fired the warning first.
static CLAMP_WARNING_EMITTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Prints a shard-clamp warning to stderr at most once per process and
/// returns whether this call was the one that printed. A job storm of 100
/// identically misconfigured backends warns once, not 100 times; the
/// warning text itself stays available per-config via
/// [`BackendKind::shard_clamp_warning`].
fn emit_clamp_warning_once(warning: &str) -> bool {
    use std::sync::atomic::Ordering;
    let first = CLAMP_WARNING_EMITTED
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok();
    if first {
        eprintln!("warning: {warning} (further shard-clamp warnings suppressed)");
    }
    first
}

/// Rearms the once-per-process shard-clamp warning so the next
/// [`build_backend`] that clamps will print (and return `true` from the
/// emitter) again. Test-only: lets the clamp unit test assert both sides of
/// the latch without depending on process-wide test ordering.
#[doc(hidden)]
pub fn reset_clamp_warning_for_tests() {
    CLAMP_WARNING_EMITTED.store(false, std::sync::atomic::Ordering::Relaxed);
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rank used by diagnostics to bypass the ownership check on read-only
/// observables ([`QuantumBackend::expectation`]).
pub const DIAG_RANK: usize = usize::MAX;

/// Uniform transport accounting for engines driven over a message
/// substrate ([`RemoteShardedEngine`] — in-process mailboxes or real
/// process workers behind sockets). Returned by
/// [`QuantumBackend::transport_stats`]; `None` means the backend has no
/// transport at all (dense in-memory engines).
///
/// All counters are cumulative over the engine's lifetime; per-job deltas
/// are the consumer's job (qserve snapshots them into its `JobReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Controller→worker command rounds (one per broadcast `ShardCmd`
    /// round-trip group — gate batches collapse many gates into one).
    pub command_rounds: u64,
    /// Worker↔worker stripe-exchange rounds (cross-shard gate traffic).
    pub exchange_rounds: u64,
    /// Bytes put on the wire, both directions, including relayed
    /// exchanges. Zero for the in-process transport, where frames never
    /// serialize onto a socket.
    pub wire_bytes: u64,
    /// Worker processes respawned by failover. Zero for the in-process
    /// transport, which has no process boundary to fail over.
    pub respawns: u64,
    /// Rank flushes absorbed into an already-open cross-rank coalesce
    /// window instead of dispatching their own command round — each count
    /// is one command fan-out round saved versus the uncoalesced path.
    /// Zero with coalescing off (`BatchPolicy::coalesce = false`).
    pub coalesced_flushes: u64,
}

/// Aggregate operation counts, maintained by the [`Shared`] wrapper across
/// every engine. The `Trace` backend exists purely to produce these (plus
/// the [`crate::ResourceLedger`] totals) at scales no amplitude-tracking
/// engine reaches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Gates applied (from the engine's own counter).
    pub gates: u64,
    /// Measurements performed (projective, parity, and measuring frees).
    pub measurements: u64,
    /// EPR entanglement operations performed over the interconnect.
    pub epr_entanglements: u64,
    /// Qubits allocated over the run.
    pub allocations: u64,
    /// Qubits freed over the run.
    pub frees: u64,
    /// Currently live qubits.
    pub live_qubits: u64,
    /// High-water mark of live qubits — the total quantum memory the
    /// distributed machine would need.
    pub max_live_qubits: u64,
}

/// The minimal engine contract: quantum state manipulation with stable
/// qubit handles, no notion of ranks or ownership. Implementations are
/// wrapped in [`Shared`], which adds locking, ownership, and locality.
pub trait SimEngine: Send {
    /// Which [`BackendKind`] this engine realizes.
    fn kind(&self) -> BackendKind;

    /// The noise model this engine applies (ideal unless configured).
    fn noise(&self) -> NoiseModel {
        NoiseModel::ideal()
    }

    /// The engine's running estimate of run fidelity under its noise model,
    /// if it maintains one. Only the trace engine does: the probability
    /// that *no* noise event fired across every operation so far — a lower
    /// bound on state fidelity, computable at scales where no amplitudes
    /// exist.
    fn modeled_fidelity(&self) -> Option<f64> {
        None
    }

    /// Message-transport accounting for engines driven over a message
    /// substrate ([`RemoteShardedEngine`]); `None` for in-process engines,
    /// where no transport exists.
    fn transport_stats(&self) -> Option<TransportStats> {
        None
    }

    /// Allocates one fresh qubit in |0>.
    fn alloc(&mut self) -> QubitId;

    /// Frees a classical-state qubit, returning its value.
    fn free(&mut self, q: QubitId) -> std::result::Result<bool, qsim::SimError>;

    /// Measures a qubit and frees it.
    fn measure_and_free(&mut self, q: QubitId) -> std::result::Result<bool, qsim::SimError>;

    /// Applies a single-qubit gate.
    fn apply(&mut self, gate: Gate, q: QubitId) -> std::result::Result<(), qsim::SimError>;

    /// Applies a multi-controlled single-qubit gate.
    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> std::result::Result<(), qsim::SimError>;

    /// CNOT.
    fn cnot(&mut self, c: QubitId, t: QubitId) -> std::result::Result<(), qsim::SimError>;

    /// CZ.
    fn cz(&mut self, a: QubitId, b: QubitId) -> std::result::Result<(), qsim::SimError>;

    /// SWAP.
    fn swap(&mut self, a: QubitId, b: QubitId) -> std::result::Result<(), qsim::SimError>;

    /// Applies a plan-time-fused 2×2 unitary ([`BatchOp::Fused1q`]). The
    /// default routes through the engine's ordinary 1q entry point as
    /// `Gate::U(m)` — the exact kernel a fused run must match — so every
    /// engine is correct without opting in; amplitude engines with a
    /// cheaper native path (none needed so far: `U` already is the native
    /// path) may override.
    fn apply_fused_1q(
        &mut self,
        q: QubitId,
        m: &qsim::gates::Mat2,
    ) -> std::result::Result<(), qsim::SimError> {
        self.apply(Gate::U(*m), q)
    }

    /// Applies a plan-time-merged diagonal sweep ([`BatchOp::PhaseSweep`]).
    /// The default decomposes into one diagonal `Gate::U` per factor plus
    /// one CZ per pair — always correct (each factor stays a separate
    /// kernel pass, in the sweep's factor order). Amplitude engines
    /// override with a single-pass sweep; the decomposition and the native
    /// pass differ only in the signs of exact zeros.
    fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> std::result::Result<(), qsim::SimError> {
        use qsim::complex::C_ZERO;
        for &(q, d0, d1) in diags {
            self.apply(Gate::U([[d0, C_ZERO], [C_ZERO, d1]]), q)?;
        }
        for &(a, b) in czs {
            self.cz(a, b)?;
        }
        Ok(())
    }

    /// Applies a whole recorded gate stream in program order. The default
    /// implementation loops the per-gate entry points — correct for every
    /// engine, since a [`GateBatch`] is by construction equivalent to its
    /// eager expansion. Engines for which batch application is materially
    /// cheaper (the process-separated engine collapses one message round
    /// per gate into one round per batch; the trace engine skips per-op
    /// dynamic dispatch) specialize it. On error, the operations preceding
    /// the failing one have been applied — the same partial-application
    /// semantics as issuing the gates eagerly.
    fn apply_batch(&mut self, batch: &GateBatch) -> std::result::Result<(), qsim::SimError> {
        for op in batch.ops() {
            match op {
                BatchOp::Gate { gate, q } => self.apply(*gate, *q)?,
                BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                } => self.apply_controlled(controls, *gate, *target)?,
                BatchOp::Cnot { c, t } => self.cnot(*c, *t)?,
                BatchOp::Cz { a, b } => self.cz(*a, *b)?,
                BatchOp::Swap { a, b } => self.swap(*a, *b)?,
                BatchOp::Fused1q { q, m } => self.apply_fused_1q(*q, m)?,
                BatchOp::PhaseSweep { diags, czs } => self.apply_phase_sweep(diags, czs)?,
            }
        }
        Ok(())
    }

    /// Projective Z measurement.
    fn measure(&mut self, q: QubitId) -> std::result::Result<bool, qsim::SimError>;

    /// Probability of measuring |1> (non-destructive).
    fn prob_one(&self, q: QubitId) -> std::result::Result<f64, qsim::SimError>;

    /// Joint Z-parity measurement.
    fn measure_z_parity(&mut self, qubits: &[QubitId])
        -> std::result::Result<bool, qsim::SimError>;

    /// Expectation value of a Pauli string.
    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> std::result::Result<f64, qsim::SimError>;

    /// Dense state snapshot in the given qubit order (engines without
    /// amplitudes return [`qsim::SimError::Unsupported`]).
    fn state_vector(&self, order: &[QubitId]) -> std::result::Result<State, qsim::SimError>;

    /// The amplitude of the single basis state where the qubits in `ones`
    /// are 1 and every other live qubit is 0 — a point probe that stays
    /// available at rank counts where no dense snapshot can exist (the
    /// sparse engine's paper-scale assertion hook). Engines that do not
    /// track per-basis-state amplitudes return
    /// [`qsim::SimError::Unsupported`].
    fn amplitude_of(
        &self,
        _ones: &[QubitId],
    ) -> std::result::Result<qsim::Complex, qsim::SimError> {
        Err(qsim::SimError::Unsupported(format!(
            "amplitude probe on the {} engine",
            self.kind().name()
        )))
    }

    /// Live qubit count.
    fn n_qubits(&self) -> usize;

    /// Total gates applied.
    fn gate_count(&self) -> u64;

    /// Total measurements performed.
    fn measurement_count(&self) -> u64;

    /// Entangles two fresh |0> qubits into (|00> + |11>)/sqrt(2). The
    /// default realization is H + CNOT; counting engines override it.
    fn entangle_epr(
        &mut self,
        qa: QubitId,
        qb: QubitId,
    ) -> std::result::Result<(), qsim::SimError> {
        self.apply(Gate::H, qa)?;
        self.cnot(qa, qb)
    }
}

/// The full, rank-aware backend surface held by every `QmpiRank` as
/// `Arc<dyn QuantumBackend>`. All implementations come from wrapping a
/// [`SimEngine`] in [`Shared`], so locality enforcement is uniform.
pub trait QuantumBackend: Send + Sync {
    /// Which engine kind backs this world.
    fn kind(&self) -> BackendKind;

    /// The noise model the world's engine applies.
    fn noise(&self) -> NoiseModel;

    /// The engine's modeled run fidelity, if it maintains one (the trace
    /// backend's error-free probability; `None` elsewhere). See
    /// [`SimEngine::modeled_fidelity`].
    fn modeled_fidelity(&self) -> Option<f64>;

    /// The engine's transport accounting, if it is driven over a message
    /// substrate — see [`SimEngine::transport_stats`]. Per-job accounting
    /// (the `qserve` job service) reads these through the backend handle.
    fn transport_stats(&self) -> Option<TransportStats> {
        None
    }

    /// Ships any cross-rank coalesce window the backend holds (see
    /// [`ShardedShared`]), so every gate segment flushed into it so far
    /// becomes visible engine state. Called by the rank layer at
    /// synchronization points that do not otherwise touch the backend
    /// (classical sends, barriers); a no-op everywhere else — the default
    /// covers backends without a window.
    fn sync_coalesced(&self) -> Result<()> {
        Ok(())
    }

    /// Allocates `n` fresh |0> qubits owned by `rank`.
    fn alloc(&self, rank: usize, n: usize) -> Vec<QubitId>;

    /// Frees a classical-state qubit owned by `rank`.
    fn free(&self, rank: usize, q: QubitId) -> Result<bool>;

    /// Measures and frees a qubit owned by `rank`.
    fn measure_and_free(&self, rank: usize, q: QubitId) -> Result<bool>;

    /// Owner rank of a qubit.
    fn owner_of(&self, q: QubitId) -> Option<usize>;

    /// Applies a local single-qubit gate.
    fn apply(&self, rank: usize, gate: Gate, q: QubitId) -> Result<()>;

    /// Applies a local CNOT; both qubits must live on `rank`.
    fn cnot(&self, rank: usize, control: QubitId, target: QubitId) -> Result<()>;

    /// Applies a local CZ; both qubits must live on `rank`.
    fn cz(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()>;

    /// Applies a local SWAP; both qubits must live on `rank`.
    fn swap(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()>;

    /// Applies a local multi-controlled gate; all qubits must live on
    /// `rank`.
    fn apply_controlled(
        &self,
        rank: usize,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<()>;

    /// Applies a whole recorded gate stream owned by `rank` in one backend
    /// acquisition. Per-rank gate calls accumulate into a
    /// [`qsim::GateBatch`] and flush through here, so the wrapper's
    /// locality lock is taken once per *batch* instead of once per gate —
    /// and the engine underneath sees the stream as one unit (one framed
    /// message round per worker on the process-separated engine).
    ///
    /// Every qubit in the batch is ownership-checked against `rank`
    /// *before* anything applies; an engine-level failure partway through
    /// leaves the preceding operations applied, exactly like issuing the
    /// gates eagerly. The default implementation loops the per-gate
    /// methods; both wrappers override it with a single acquisition.
    fn apply_batch(&self, rank: usize, batch: &GateBatch) -> Result<()> {
        for op in batch.ops() {
            match op {
                BatchOp::Gate { gate, q } => self.apply(rank, *gate, *q)?,
                BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                } => self.apply_controlled(rank, controls, *gate, *target)?,
                BatchOp::Cnot { c, t } => self.cnot(rank, *c, *t)?,
                BatchOp::Cz { a, b } => self.cz(rank, *a, *b)?,
                BatchOp::Swap { a, b } => self.swap(rank, *a, *b)?,
                BatchOp::Fused1q { q, m } => self.apply(rank, Gate::U(*m), *q)?,
                BatchOp::PhaseSweep { diags, czs } => {
                    // Decomposed fallback; both wrappers override with a
                    // single-acquisition engine call.
                    use qsim::complex::C_ZERO;
                    for &(q, d0, d1) in diags {
                        self.apply(rank, Gate::U([[d0, C_ZERO], [C_ZERO, d1]]), q)?;
                    }
                    for &(a, b) in czs {
                        self.cz(rank, a, b)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Measures a qubit (projective, qubit survives).
    fn measure(&self, rank: usize, q: QubitId) -> Result<bool>;

    /// Probability of measuring 1 (non-destructive diagnostic).
    fn prob_one(&self, rank: usize, q: QubitId) -> Result<f64>;

    /// Local joint Z-parity measurement (all qubits on `rank`).
    fn measure_z_parity(&self, rank: usize, qubits: &[QubitId]) -> Result<bool>;

    /// Models the quantum-coherent interconnect: entangles two fresh |0>
    /// qubits on (possibly) different ranks into (|00> + |11>)/sqrt(2).
    ///
    /// This is the *only* cross-rank quantum operation; everything else
    /// must go through teleportation/fanout protocols built on it.
    fn entangle_epr(&self, qa: QubitId, qb: QubitId) -> Result<()>;

    /// Entangles many EPR pairs in one backend acquisition. Collectives
    /// that establish a whole spanning tree of pairs (the cat-state bcast)
    /// use this so `n - 1` establishments cost one lock round-trip instead
    /// of `n - 1`. The default implementation loops [`Self::entangle_epr`];
    /// wrappers override it with a single acquisition.
    fn entangle_epr_batch(&self, pairs: &[(QubitId, QubitId)]) -> Result<()> {
        for &(qa, qb) in pairs {
            self.entangle_epr(qa, qb)?;
        }
        Ok(())
    }

    /// Expectation value of a Pauli string over qubits owned by `rank`.
    /// Diagnostics pass [`DIAG_RANK`] to read across the whole machine.
    fn expectation(&self, rank: usize, terms: &[(QubitId, Pauli)]) -> Result<f64>;

    /// Expectation values of many Pauli strings — one observable, many
    /// terms — in a single backend acquisition. Callers evaluating an
    /// observable term-by-term (per-site magnetization, multi-rank parity
    /// checks) would otherwise take the global lock once per term. The
    /// default implementation loops [`Self::expectation`]; wrappers
    /// override it with a single acquisition.
    fn expectation_each(&self, rank: usize, strings: &[Vec<(QubitId, Pauli)>]) -> Result<Vec<f64>> {
        strings
            .iter()
            .map(|terms| self.expectation(rank, terms))
            .collect()
    }

    /// Global state snapshot in the given qubit order — diagnostics for
    /// tests and examples ("the state vector faithfully represents the
    /// quantum state of the distributed quantum computer", Section 6).
    /// Only the state-vector engine supports it.
    fn state_vector(&self, order: &[QubitId]) -> Result<State>;

    /// Amplitude of the basis state with the qubits in `ones` set to 1 and
    /// every other live qubit 0, over qubits owned by `rank` (diagnostics
    /// pass [`DIAG_RANK`] to probe across the whole machine). Unlike
    /// [`Self::state_vector`], this works at paper-scale rank counts on the
    /// sparse backend; amplitude-less engines report
    /// [`qsim::SimError::Unsupported`].
    fn amplitude_of(&self, rank: usize, ones: &[QubitId]) -> Result<qsim::Complex>;

    /// Number of live qubits (diagnostics).
    fn n_qubits(&self) -> usize;

    /// Total gates applied (diagnostics).
    fn gate_count(&self) -> u64;

    /// Aggregate operation counts (the `Trace` backend's primary output).
    fn counts(&self) -> OpCounts;
}

/// Engine state plus the ownership registry and resource counters. Both
/// locality wrappers ([`Shared`] behind one mutex, [`ShardedShared`] behind
/// a reader-writer lock) guard an `Inner` and call these methods, so the
/// ownership/locality semantics are written exactly once regardless of the
/// locking strategy.
pub(crate) struct Inner<E> {
    pub(crate) engine: E,
    owner: HashMap<QubitId, usize>,
    epr_entanglements: u64,
    allocations: u64,
    frees: u64,
    max_live: u64,
}

impl<E> Inner<E> {
    pub(crate) fn new(engine: E) -> Self {
        Inner {
            engine,
            owner: HashMap::new(),
            epr_entanglements: 0,
            allocations: 0,
            frees: 0,
            max_live: 0,
        }
    }

    pub(crate) fn check_owner(&self, rank: usize, q: QubitId) -> Result<()> {
        match self.owner.get(&q) {
            None => Err(QmpiError::Sim(qsim::SimError::UnknownQubit(q))),
            Some(&o) if o == rank => Ok(()),
            Some(&o) => Err(QmpiError::Locality {
                qubit: q,
                owner: o,
                acting: rank,
            }),
        }
    }

    pub(crate) fn owner_of(&self, q: QubitId) -> Option<usize> {
        self.owner.get(&q).copied()
    }

    /// Ownership-checks every qubit a batch touches — the once-per-batch
    /// analogue of the per-gate checks, shared by both locality wrappers.
    pub(crate) fn check_batch(&self, rank: usize, batch: &GateBatch) -> Result<()> {
        for op in batch.ops() {
            // Allocation-free qubit sweep: this runs under the backend
            // lock on every flush, so no per-op `Vec`s.
            let mut failed = None;
            op.for_each_qubit(|q| {
                if failed.is_none() {
                    failed = self.check_owner(rank, q).err();
                }
            });
            if let Some(e) = failed {
                return Err(e);
            }
            op.validate().map_err(QmpiError::Sim)?;
        }
        Ok(())
    }
}

impl<E: SimEngine> Inner<E> {
    pub(crate) fn alloc(&mut self, rank: usize, n: usize) -> Vec<QubitId> {
        let ids: Vec<QubitId> = (0..n).map(|_| self.engine.alloc()).collect();
        for &id in &ids {
            self.owner.insert(id, rank);
        }
        self.allocations += n as u64;
        let live = self.engine.n_qubits() as u64;
        self.max_live = self.max_live.max(live);
        ids
    }

    pub(crate) fn free(&mut self, rank: usize, q: QubitId) -> Result<bool> {
        self.check_owner(rank, q)?;
        let out = self.engine.free(q)?;
        self.owner.remove(&q);
        self.frees += 1;
        Ok(out)
    }

    pub(crate) fn measure_and_free(&mut self, rank: usize, q: QubitId) -> Result<bool> {
        self.check_owner(rank, q)?;
        let out = self.engine.measure_and_free(q)?;
        self.owner.remove(&q);
        self.frees += 1;
        Ok(out)
    }

    pub(crate) fn measure(&mut self, rank: usize, q: QubitId) -> Result<bool> {
        self.check_owner(rank, q)?;
        Ok(self.engine.measure(q)?)
    }

    pub(crate) fn prob_one(&self, rank: usize, q: QubitId) -> Result<f64> {
        self.check_owner(rank, q)?;
        Ok(self.engine.prob_one(q)?)
    }

    pub(crate) fn measure_z_parity(&mut self, rank: usize, qubits: &[QubitId]) -> Result<bool> {
        for &q in qubits {
            self.check_owner(rank, q)?;
        }
        Ok(self.engine.measure_z_parity(qubits)?)
    }

    pub(crate) fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<()> {
        if !self.owner.contains_key(&qa) {
            return Err(QmpiError::Sim(qsim::SimError::UnknownQubit(qa)));
        }
        if !self.owner.contains_key(&qb) {
            return Err(QmpiError::Sim(qsim::SimError::UnknownQubit(qb)));
        }
        for &q in &[qa, qb] {
            if self.engine.prob_one(q)? > 1e-9 {
                return Err(QmpiError::EprQubitNotFresh(q));
            }
        }
        self.engine.entangle_epr(qa, qb)?;
        self.epr_entanglements += 1;
        Ok(())
    }

    pub(crate) fn entangle_epr_batch(&mut self, pairs: &[(QubitId, QubitId)]) -> Result<()> {
        for &(qa, qb) in pairs {
            self.entangle_epr(qa, qb)?;
        }
        Ok(())
    }

    pub(crate) fn expectation(&self, rank: usize, terms: &[(QubitId, Pauli)]) -> Result<f64> {
        if rank != DIAG_RANK {
            for &(q, _) in terms {
                self.check_owner(rank, q)?;
            }
        }
        Ok(self.engine.expectation(terms)?)
    }

    pub(crate) fn amplitude_of(&self, rank: usize, ones: &[QubitId]) -> Result<qsim::Complex> {
        if rank != DIAG_RANK {
            for &q in ones {
                self.check_owner(rank, q)?;
            }
        }
        Ok(self.engine.amplitude_of(ones)?)
    }

    pub(crate) fn expectation_each(
        &self,
        rank: usize,
        strings: &[Vec<(QubitId, Pauli)>],
    ) -> Result<Vec<f64>> {
        strings
            .iter()
            .map(|terms| self.expectation(rank, terms))
            .collect()
    }

    pub(crate) fn counts(&self) -> OpCounts {
        OpCounts {
            gates: self.engine.gate_count(),
            measurements: self.engine.measurement_count(),
            epr_entanglements: self.epr_entanglements,
            allocations: self.allocations,
            frees: self.frees,
            live_qubits: self.engine.n_qubits() as u64,
            max_live_qubits: self.max_live,
        }
    }
}

/// The shared locality wrapper: one lock-guarded [`SimEngine`] plus the
/// qubit-ownership registry. Implements [`QuantumBackend`] for any engine,
/// so ownership/locality semantics are written exactly once.
pub struct Shared<E> {
    /// Cached at construction so [`QuantumBackend::kind`] never touches the
    /// lock that serializes quantum operations.
    kind: BackendKind,
    /// Cached like `kind`: the model is immutable after construction.
    noise: NoiseModel,
    inner: Mutex<Inner<E>>,
}

impl<E: SimEngine> Shared<E> {
    /// Wraps an engine.
    pub fn new(engine: E) -> Self {
        Shared {
            kind: engine.kind(),
            noise: engine.noise(),
            inner: Mutex::new(Inner::new(engine)),
        }
    }
}

impl<E: SimEngine> QuantumBackend for Shared<E> {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn noise(&self) -> NoiseModel {
        self.noise
    }

    fn modeled_fidelity(&self) -> Option<f64> {
        self.inner.lock().engine.modeled_fidelity()
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        self.inner.lock().engine.transport_stats()
    }

    fn alloc(&self, rank: usize, n: usize) -> Vec<QubitId> {
        self.inner.lock().alloc(rank, n)
    }

    fn free(&self, rank: usize, q: QubitId) -> Result<bool> {
        self.inner.lock().free(rank, q)
    }

    fn measure_and_free(&self, rank: usize, q: QubitId) -> Result<bool> {
        self.inner.lock().measure_and_free(rank, q)
    }

    fn owner_of(&self, q: QubitId) -> Option<usize> {
        self.inner.lock().owner_of(q)
    }

    fn apply(&self, rank: usize, gate: Gate, q: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        g.check_owner(rank, q)?;
        g.engine.apply(gate, q)?;
        Ok(())
    }

    fn cnot(&self, rank: usize, control: QubitId, target: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        g.check_owner(rank, control)?;
        g.check_owner(rank, target)?;
        g.engine.cnot(control, target)?;
        Ok(())
    }

    fn cz(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        g.check_owner(rank, a)?;
        g.check_owner(rank, b)?;
        g.engine.cz(a, b)?;
        Ok(())
    }

    fn swap(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        g.check_owner(rank, a)?;
        g.check_owner(rank, b)?;
        g.engine.swap(a, b)?;
        Ok(())
    }

    fn apply_controlled(
        &self,
        rank: usize,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<()> {
        let mut g = self.inner.lock();
        for &c in controls {
            g.check_owner(rank, c)?;
        }
        g.check_owner(rank, target)?;
        g.engine.apply_controlled(controls, gate, target)?;
        Ok(())
    }

    fn apply_batch(&self, rank: usize, batch: &GateBatch) -> Result<()> {
        // One acquisition for the whole gate stream.
        let mut g = self.inner.lock();
        g.check_batch(rank, batch)?;
        g.engine.apply_batch(batch)?;
        Ok(())
    }

    fn measure(&self, rank: usize, q: QubitId) -> Result<bool> {
        self.inner.lock().measure(rank, q)
    }

    fn prob_one(&self, rank: usize, q: QubitId) -> Result<f64> {
        self.inner.lock().prob_one(rank, q)
    }

    fn measure_z_parity(&self, rank: usize, qubits: &[QubitId]) -> Result<bool> {
        self.inner.lock().measure_z_parity(rank, qubits)
    }

    fn entangle_epr(&self, qa: QubitId, qb: QubitId) -> Result<()> {
        self.inner.lock().entangle_epr(qa, qb)
    }

    fn entangle_epr_batch(&self, pairs: &[(QubitId, QubitId)]) -> Result<()> {
        // One acquisition for the whole spanning tree.
        self.inner.lock().entangle_epr_batch(pairs)
    }

    fn expectation(&self, rank: usize, terms: &[(QubitId, Pauli)]) -> Result<f64> {
        self.inner.lock().expectation(rank, terms)
    }

    fn expectation_each(&self, rank: usize, strings: &[Vec<(QubitId, Pauli)>]) -> Result<Vec<f64>> {
        // One acquisition per observable, not one per Pauli string.
        self.inner.lock().expectation_each(rank, strings)
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State> {
        let g = self.inner.lock();
        Ok(g.engine.state_vector(order)?)
    }

    fn amplitude_of(&self, rank: usize, ones: &[QubitId]) -> Result<qsim::Complex> {
        self.inner.lock().amplitude_of(rank, ones)
    }

    fn n_qubits(&self) -> usize {
        self.inner.lock().engine.n_qubits()
    }

    fn gate_count(&self) -> u64 {
        self.inner.lock().engine.gate_count()
    }

    fn counts(&self) -> OpCounts {
        self.inner.lock().counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unified construction path with the defaults the deprecated
    /// shims supplied (in-process transport, ideal noise).
    fn build(kind: BackendKind, seed: u64) -> Arc<dyn QuantumBackend> {
        build_backend(kind, TransportKind::InProcess, seed, NoiseModel::ideal())
            .expect("test backend configurations are valid")
    }

    fn all_kinds() -> [BackendKind; 6] {
        [
            BackendKind::StateVector,
            BackendKind::Stabilizer,
            BackendKind::Trace,
            BackendKind::Sparse,
            BackendKind::ShardedStateVector { shards: 4 },
            BackendKind::RemoteSharded { shards: 2 },
        ]
    }

    /// Kinds that track real quantum state (trace excluded).
    fn stateful_kinds() -> [BackendKind; 5] {
        [
            BackendKind::StateVector,
            BackendKind::Stabilizer,
            BackendKind::Sparse,
            BackendKind::ShardedStateVector { shards: 4 },
            BackendKind::RemoteSharded { shards: 2 },
        ]
    }

    #[test]
    fn ownership_enforced_on_gates_for_every_backend() {
        for kind in all_kinds() {
            let b = build(kind, 1);
            let q0 = b.alloc(0, 1)[0];
            let q1 = b.alloc(1, 1)[0];
            assert!(b.apply(0, Gate::H, q0).is_ok(), "{kind}");
            assert_eq!(
                b.apply(0, Gate::H, q1),
                Err(QmpiError::Locality {
                    qubit: q1,
                    owner: 1,
                    acting: 0
                }),
                "{kind}"
            );
            assert!(
                b.cnot(0, q0, q1).is_err(),
                "{kind}: cross-rank CNOT must be rejected"
            );
        }
    }

    #[test]
    fn entangle_epr_creates_bell_pair() {
        let b = build(BackendKind::StateVector, 3);
        let qa = b.alloc(0, 1)[0];
        let qb = b.alloc(1, 1)[0];
        b.entangle_epr(qa, qb).unwrap();
        let st = b.state_vector(&[qa, qb]).unwrap();
        assert!((st.probability(0b00) - 0.5).abs() < 1e-10);
        assert!((st.probability(0b11) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn entangle_epr_correlates_on_stabilizer() {
        let b = build(BackendKind::Stabilizer, 3);
        let qa = b.alloc(0, 1)[0];
        let qb = b.alloc(1, 1)[0];
        b.entangle_epr(qa, qb).unwrap();
        assert_eq!(
            b.expectation(DIAG_RANK, &[(qa, Pauli::Z), (qb, Pauli::Z)]),
            Ok(1.0)
        );
        let ma = b.measure(0, qa).unwrap();
        let mb = b.measure(1, qb).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn entangle_requires_fresh_qubits() {
        for kind in stateful_kinds() {
            let b = build(kind, 3);
            let qa = b.alloc(0, 1)[0];
            let qb = b.alloc(1, 1)[0];
            b.apply(0, Gate::X, qa).unwrap();
            assert_eq!(
                b.entangle_epr(qa, qb),
                Err(QmpiError::EprQubitNotFresh(qa)),
                "{kind}"
            );
        }
    }

    #[test]
    fn free_transfers_out_of_registry() {
        for kind in all_kinds() {
            let b = build(kind, 1);
            let q = b.alloc(0, 1)[0];
            assert_eq!(b.free(0, q), Ok(false), "{kind}");
            assert!(b.apply(0, Gate::X, q).is_err(), "{kind}");
        }
    }

    #[test]
    fn cross_rank_free_rejected() {
        for kind in all_kinds() {
            let b = build(kind, 1);
            let q = b.alloc(0, 1)[0];
            assert!(
                matches!(b.free(1, q), Err(QmpiError::Locality { .. })),
                "{kind}"
            );
        }
    }

    #[test]
    fn epr_measurements_agree() {
        for kind in stateful_kinds() {
            let b = build(kind, 9);
            let qa = b.alloc(0, 1)[0];
            let qb = b.alloc(1, 1)[0];
            b.entangle_epr(qa, qb).unwrap();
            let ma = b.measure(0, qa).unwrap();
            let mb = b.measure(1, qb).unwrap();
            assert_eq!(ma, mb, "{kind}");
        }
    }

    #[test]
    fn expectation_enforces_ownership() {
        // The doc always promised a rank-ownership check; the wrapper now
        // performs it (diagnostics opt out via DIAG_RANK).
        for kind in stateful_kinds() {
            let b = build(kind, 5);
            let q0 = b.alloc(0, 1)[0];
            let q1 = b.alloc(1, 1)[0];
            assert!(b.expectation(0, &[(q0, Pauli::Z)]).is_ok(), "{kind}");
            assert!(
                matches!(
                    b.expectation(0, &[(q0, Pauli::Z), (q1, Pauli::Z)]),
                    Err(QmpiError::Locality { .. })
                ),
                "{kind}: cross-rank expectation must be rejected"
            );
            assert!(
                b.expectation(DIAG_RANK, &[(q0, Pauli::Z), (q1, Pauli::Z)])
                    .is_ok(),
                "{kind}"
            );
        }
    }

    #[test]
    fn clamp_warning_latch_is_observable_and_resettable() {
        // No other test in this binary builds a clamping shard count, so
        // between the reset and the emission below the latch is ours
        // alone — both sides of the transition are assertable.
        reset_clamp_warning_for_tests();
        assert!(
            emit_clamp_warning_once("test warning (armed)"),
            "a freshly reset latch must print"
        );
        assert!(
            !emit_clamp_warning_once("test warning (suppressed)"),
            "the second emission must be suppressed"
        );
        assert!(!emit_clamp_warning_once("test warning (still suppressed)"));
        // Rearming is repeatable, not a one-way door per process.
        reset_clamp_warning_for_tests();
        assert!(emit_clamp_warning_once("test warning (re-armed)"));
    }

    #[test]
    fn shard_clamp_warning_fires_only_when_the_count_changes() {
        // In-range powers of two pass silently.
        assert_eq!(
            BackendKind::RemoteSharded { shards: 4 }.shard_clamp_warning(),
            None
        );
        assert_eq!(
            BackendKind::ShardedStateVector { shards: 8 }.shard_clamp_warning(),
            None
        );
        assert_eq!(BackendKind::StateVector.shard_clamp_warning(), None);
        // Over the remote cap: clamped to 64 with a visible message.
        let w = BackendKind::RemoteSharded { shards: 128 }
            .shard_clamp_warning()
            .expect("128 remote shards must warn");
        assert!(
            w.contains("128") && w.contains("64") && w.contains("clamped"),
            "{w}"
        );
        assert_eq!(
            BackendKind::RemoteSharded { shards: 128 }.effective_shards(),
            Some(64)
        );
        // Zero: clamped up to 1.
        assert!(BackendKind::RemoteSharded { shards: 0 }
            .shard_clamp_warning()
            .is_some());
        // Non-power-of-two inside the range: rounded, different message.
        let w = BackendKind::ShardedStateVector { shards: 6 }
            .shard_clamp_warning()
            .expect("6 stripes round to 8");
        assert!(w.contains("rounded") && w.contains('8'), "{w}");
        // Over the lock-striped cap too.
        assert_eq!(
            BackendKind::ShardedStateVector { shards: 1000 }.effective_shards(),
            Some(256)
        );
    }

    #[test]
    fn apply_batch_checks_ownership_before_applying_anything() {
        for kind in all_kinds() {
            let b = build(kind, 2);
            let mine = b.alloc(0, 2);
            let theirs = b.alloc(1, 1)[0];
            let mut batch = GateBatch::new();
            batch.push(BatchOp::Gate {
                gate: Gate::H,
                q: mine[0],
            });
            batch.push(BatchOp::Cnot {
                c: mine[0],
                t: theirs,
            });
            let before = b.gate_count();
            assert!(
                matches!(b.apply_batch(0, &batch), Err(QmpiError::Locality { .. })),
                "{kind}: cross-rank op inside a batch must be rejected"
            );
            assert_eq!(
                b.gate_count(),
                before,
                "{kind}: rejected batch must not partially apply"
            );
        }
    }

    #[test]
    fn apply_batch_equals_eager_application() {
        let eager = build(BackendKind::StateVector, 5);
        let batched = build(BackendKind::StateVector, 5);
        let eq = eager.alloc(0, 3);
        let bq = batched.alloc(0, 3);
        eager.apply(0, Gate::H, eq[0]).unwrap();
        eager.cnot(0, eq[0], eq[1]).unwrap();
        eager.apply(0, Gate::T, eq[2]).unwrap();
        eager.swap(0, eq[1], eq[2]).unwrap();
        eager.cz(0, eq[0], eq[2]).unwrap();
        let mut batch = GateBatch::new();
        batch.push(BatchOp::Gate {
            gate: Gate::H,
            q: bq[0],
        });
        batch.push(BatchOp::Cnot { c: bq[0], t: bq[1] });
        batch.push(BatchOp::Gate {
            gate: Gate::T,
            q: bq[2],
        });
        batch.push(BatchOp::Swap { a: bq[1], b: bq[2] });
        batch.push(BatchOp::Cz { a: bq[0], b: bq[2] });
        batched.apply_batch(0, &batch).unwrap();
        assert_eq!(batched.gate_count(), eager.gate_count());
        let want = eager.state_vector(&eq).unwrap();
        let got = batched.state_vector(&bq).unwrap();
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "amp[{i}]: {w:?} vs {g:?}"
            );
        }
    }

    #[test]
    fn trace_backend_counts_operations() {
        let b = build(BackendKind::Trace, 0);
        let qs = b.alloc(0, 3);
        b.apply(0, Gate::H, qs[0]).unwrap();
        b.cnot(0, qs[0], qs[1]).unwrap();
        b.entangle_epr(qs[1], qs[2]).unwrap();
        b.measure(0, qs[0]).unwrap();
        let c = b.counts();
        assert_eq!(c.allocations, 3);
        assert_eq!(c.epr_entanglements, 1);
        assert_eq!(c.measurements, 1);
        // H + CNOT + the EPR's internal H/CNOT pair.
        assert_eq!(c.gates, 4);
        assert_eq!(c.live_qubits, 3);
        assert_eq!(c.max_live_qubits, 3);
    }

    #[test]
    fn stabilizer_rejects_non_clifford() {
        let b = build(BackendKind::Stabilizer, 1);
        let q = b.alloc(0, 1)[0];
        assert!(matches!(
            b.apply(0, Gate::T, q),
            Err(QmpiError::Sim(qsim::SimError::Unsupported(_)))
        ));
    }

    #[test]
    fn non_dense_backends_refuse_state_vector() {
        for kind in [BackendKind::Stabilizer, BackendKind::Trace] {
            let b = build(kind, 1);
            let q = b.alloc(0, 1)[0];
            assert!(
                matches!(
                    b.state_vector(&[q]),
                    Err(QmpiError::Sim(qsim::SimError::Unsupported(_)))
                ),
                "{kind}"
            );
        }
    }

    #[test]
    fn max_live_tracks_high_water_mark() {
        let b = build(BackendKind::Trace, 0);
        let qs = b.alloc(0, 5);
        for q in qs {
            b.measure_and_free(0, q).unwrap();
        }
        let more = b.alloc(0, 2);
        let c = b.counts();
        assert_eq!(c.live_qubits, 2);
        assert_eq!(c.max_live_qubits, 5);
        assert_eq!(c.frees, 5);
        for q in more {
            b.free(0, q).unwrap();
        }
    }
}
