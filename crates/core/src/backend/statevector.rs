//! The full state-vector engine — the paper's prototype backend.

use super::{BackendKind, SimEngine};
use qsim::noise::NoiseModel;
use qsim::{Gate, Pauli, QubitId, SimError, Simulator, State};

/// Dense-amplitude engine over [`qsim::Simulator`]. Exact for arbitrary
/// gates, exponential in total qubit count (~25-qubit practical cap).
pub struct StateVectorEngine {
    sim: Simulator,
}

impl StateVectorEngine {
    /// Creates a noiseless engine with a deterministic measurement RNG seed.
    pub fn new(seed: u64) -> Self {
        StateVectorEngine {
            sim: Simulator::new(seed),
        }
    }

    /// Creates an engine that applies `noise` as stochastic Pauli/Kraus
    /// trajectory insertions (see [`qsim::noise`]).
    pub fn with_noise(seed: u64, noise: NoiseModel) -> Self {
        StateVectorEngine {
            sim: Simulator::with_noise(seed, noise),
        }
    }
}

impl SimEngine for StateVectorEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::StateVector
    }

    fn noise(&self) -> NoiseModel {
        self.sim.noise_model()
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        // Routed through the simulator so interconnect noise uses the
        // dedicated EPR channel rather than the gate channels.
        self.sim.entangle_epr(qa, qb)
    }

    fn alloc(&mut self) -> QubitId {
        self.sim.alloc()
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.free(q)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure_and_free(q)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        self.sim.apply(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        self.sim.apply_controlled(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        self.sim.cnot(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.cz(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.swap(a, b)
    }

    fn apply_fused_1q(&mut self, q: QubitId, m: &qsim::gates::Mat2) -> Result<(), SimError> {
        self.sim.apply_fused_1q(q, m)
    }

    fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> Result<(), SimError> {
        self.sim.apply_phase_sweep(diags, czs)
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure(q)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        self.sim.prob_one(q)
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        self.sim.measure_z_parity(qubits)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        self.sim.expectation(terms)
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        self.sim.state_vector(order)
    }

    fn amplitude_of(&self, ones: &[QubitId]) -> Result<qsim::Complex, SimError> {
        self.sim.amplitude_of(ones)
    }

    fn n_qubits(&self) -> usize {
        self.sim.n_qubits()
    }

    fn gate_count(&self) -> u64 {
        self.sim.gate_count()
    }

    fn measurement_count(&self) -> u64 {
        self.sim.measurement_count()
    }
}
