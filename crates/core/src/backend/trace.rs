//! The trace engine: no amplitudes, only operation accounting.
//!
//! Applying a gate or establishing an EPR pair just increments counters;
//! measurements deterministically return `false` (|0>), so every protocol's
//! fixup branches are exercised least-often but the control flow, message
//! pattern, and resource consumption — the quantities the paper's Tables
//! 1–3 are about — are exact. This is what lets the experiment harness
//! reproduce the paper's resource formulas at arbitrary rank counts in
//! microseconds.

use super::{BackendKind, SimEngine};
use qsim::noise::{NoiseModel, OpClass};
use qsim::{BatchOp, Gate, GateBatch, Pauli, QubitId, SimError, State};
use std::collections::HashSet;

/// Counting-only engine; see the module docs.
///
/// Under a [`NoiseModel`] the trace engine cannot sample trajectories — it
/// has no state to perturb — so it *models* the noise instead: every
/// operation multiplies a running error-free probability by each involved
/// qubit's channel fidelity, yielding the probability that no noise event
/// fired over the whole run ([`TraceEngine::modeled_fidelity`]). That is the
/// quantity fidelity-vs-`S`-budget studies extrapolate to rank counts no
/// amplitude-tracking engine reaches.
pub struct TraceEngine {
    live: HashSet<QubitId>,
    next_id: u64,
    gate_count: u64,
    measurement_count: u64,
    noise: NoiseModel,
    /// Probability that no noise event has fired so far (1.0 when ideal).
    error_free: f64,
}

impl TraceEngine {
    /// Creates an empty, noiseless trace engine.
    pub fn new() -> Self {
        TraceEngine::with_noise(NoiseModel::ideal())
    }

    /// Creates a trace engine that models `noise` analytically.
    pub fn with_noise(noise: NoiseModel) -> Self {
        TraceEngine {
            live: HashSet::new(),
            next_id: 0,
            gate_count: 0,
            measurement_count: 0,
            noise,
            error_free: 1.0,
        }
    }

    fn check(&self, q: QubitId) -> Result<(), SimError> {
        if self.live.contains(&q) {
            Ok(())
        } else {
            Err(SimError::UnknownQubit(q))
        }
    }

    /// Folds one application of the `class` channel on `qubits` qubits into
    /// the modeled error-free probability.
    fn model_noise(&mut self, class: OpClass, qubits: u32) {
        let ch = self.noise.channel(class);
        if !ch.is_ideal() {
            self.error_free *= ch.error_free_probability().powi(qubits as i32);
        }
    }
}

impl Default for TraceEngine {
    fn default() -> Self {
        TraceEngine::new()
    }
}

impl SimEngine for TraceEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Trace
    }

    fn noise(&self) -> NoiseModel {
        self.noise
    }

    fn modeled_fidelity(&self) -> Option<f64> {
        Some(self.error_free)
    }

    fn alloc(&mut self) -> QubitId {
        let id = QubitId(self.next_id);
        self.next_id += 1;
        self.live.insert(id);
        id
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.check(q)?;
        self.live.remove(&q);
        Ok(false)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.check(q)?;
        self.live.remove(&q);
        self.measurement_count += 1;
        self.model_noise(OpClass::Measurement, 1);
        Ok(false)
    }

    fn apply(&mut self, _gate: Gate, q: QubitId) -> Result<(), SimError> {
        self.check(q)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate1q, 1);
        Ok(())
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        _gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        for &c in controls {
            self.check(c)?;
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
        }
        self.check(target)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate2q, controls.len() as u32 + 1);
        Ok(())
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        if c == t {
            return Err(SimError::DuplicateQubit(c));
        }
        self.check(c)?;
        self.check(t)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate2q, 2);
        Ok(())
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        self.check(a)?;
        self.check(b)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate2q, 2);
        Ok(())
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        self.check(a)?;
        self.check(b)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate2q, 2);
        Ok(())
    }

    fn apply_fused_1q(&mut self, q: QubitId, _m: &qsim::gates::Mat2) -> Result<(), SimError> {
        // One kernel sweep = one counted gate, matching every amplitude
        // engine (the counters report sweeps, which is what fusion cuts).
        self.check(q)?;
        self.gate_count += 1;
        self.model_noise(OpClass::Gate1q, 1);
        Ok(())
    }

    fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> Result<(), SimError> {
        let mut touched = 0u32;
        for &(q, ..) in diags {
            self.check(q)?;
            touched += 1;
        }
        for &(a, b) in czs {
            if a == b {
                return Err(SimError::DuplicateQubit(a));
            }
            self.check(a)?;
            self.check(b)?;
            touched += 2;
        }
        self.gate_count += 1;
        self.model_noise(OpClass::Gate1q, touched);
        Ok(())
    }

    fn apply_batch(&mut self, batch: &GateBatch) -> Result<(), SimError> {
        // Specialized fast path for the (common) ideal model: one sweep
        // that validates and counts without the per-op noise-fold calls.
        // Error precedence and the skip-identical-SWAP rule mirror the
        // per-gate entry points exactly, including the eager prefix
        // semantics: ops before a failing one stay counted.
        if !self.noise.is_ideal() {
            // Noisy models fold per-qubit channel fidelities per op; the
            // per-gate entry points already sequence that correctly.
            for op in batch.ops() {
                match op {
                    BatchOp::Gate { gate, q } => self.apply(*gate, *q)?,
                    BatchOp::Controlled {
                        controls,
                        gate,
                        target,
                    } => self.apply_controlled(controls, *gate, *target)?,
                    BatchOp::Cnot { c, t } => self.cnot(*c, *t)?,
                    BatchOp::Cz { a, b } => self.cz(*a, *b)?,
                    BatchOp::Swap { a, b } => self.swap(*a, *b)?,
                    BatchOp::Fused1q { q, m } => self.apply_fused_1q(*q, m)?,
                    BatchOp::PhaseSweep { diags, czs } => self.apply_phase_sweep(diags, czs)?,
                }
            }
            return Ok(());
        }
        for op in batch.ops() {
            match op {
                BatchOp::Gate { q, .. } => self.check(*q)?,
                BatchOp::Controlled {
                    controls, target, ..
                } => {
                    for &c in controls {
                        self.check(c)?;
                        if c == *target {
                            return Err(SimError::DuplicateQubit(c));
                        }
                    }
                    self.check(*target)?;
                }
                BatchOp::Cnot { c: a, t: b } | BatchOp::Cz { a, b } => {
                    if a == b {
                        return Err(SimError::DuplicateQubit(*a));
                    }
                    self.check(*a)?;
                    self.check(*b)?;
                }
                BatchOp::Swap { a, b } => {
                    if a == b {
                        continue;
                    }
                    self.check(*a)?;
                    self.check(*b)?;
                }
                BatchOp::Fused1q { q, .. } => self.check(*q)?,
                BatchOp::PhaseSweep { diags, czs } => {
                    for &(q, ..) in diags {
                        self.check(q)?;
                    }
                    for &(a, b) in czs {
                        if a == b {
                            return Err(SimError::DuplicateQubit(a));
                        }
                        self.check(a)?;
                        self.check(b)?;
                    }
                }
            }
            self.gate_count += 1;
        }
        Ok(())
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.check(q)?;
        self.measurement_count += 1;
        self.model_noise(OpClass::Measurement, 1);
        Ok(false)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        self.check(q)?;
        // Every qubit reads |0>: EPR freshness checks pass and frees
        // succeed, which is exactly what a counting run wants.
        Ok(0.0)
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        for &q in qubits {
            self.check(q)?;
        }
        self.measurement_count += 1;
        self.model_noise(OpClass::Measurement, qubits.len() as u32);
        Ok(false)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        for &(q, _) in terms {
            self.check(q)?;
        }
        // Consistent with the all-|0> convention: <Z> = +1, <X> = <Y> = 0.
        Ok(if terms.iter().all(|&(_, p)| p == Pauli::Z) {
            1.0
        } else {
            0.0
        })
    }

    fn state_vector(&self, _order: &[QubitId]) -> Result<State, SimError> {
        Err(SimError::Unsupported(
            "the trace backend tracks no amplitudes; use the state-vector backend for dense \
             snapshots"
                .into(),
        ))
    }

    fn n_qubits(&self) -> usize {
        self.live.len()
    }

    fn gate_count(&self) -> u64 {
        self.gate_count
    }

    fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        // Count the interconnect operation as the H + CNOT it stands for,
        // matching the other engines' gate tallies — but model its noise as
        // one EPR-channel application per half, like the stochastic engines,
        // not as gate noise.
        self.check(qa)?;
        self.check(qb)?;
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        self.gate_count += 2;
        self.model_noise(OpClass::Epr, 2);
        Ok(())
    }
}
