//! The CHP stabilizer-tableau engine: Clifford-only QMPI at scale.
//!
//! Every QMPI communication primitive (EPR establishment, entangled copy,
//! teleportation, cat-state fanout, parity reduce) is pure Clifford, so this
//! engine runs the paper's protocols with polynomial cost — thousands of
//! ranks instead of the state vector's ~25-qubit ceiling. Applying a
//! non-Clifford gate surfaces [`qsim::SimError::Unsupported`].

use super::{BackendKind, SimEngine};
use qsim::noise::NoiseModel;
use qsim::{Gate, Pauli, QubitId, SimError, StabilizerSim, State};

/// Tableau engine over [`qsim::StabilizerSim`].
pub struct StabilizerEngine {
    sim: StabilizerSim,
}

impl StabilizerEngine {
    /// Creates a noiseless engine with a deterministic measurement RNG seed.
    pub fn new(seed: u64) -> Self {
        StabilizerEngine {
            sim: StabilizerSim::new(seed),
        }
    }

    /// Creates an engine that applies `noise` as stochastic Pauli
    /// insertions on the tableau. Only the Clifford-compatible channels
    /// (depolarizing/dephasing) are realizable; operations under an
    /// amplitude-damping channel surface [`qsim::SimError::Unsupported`] —
    /// [`super::build_backend`] rejects such models up front.
    pub fn with_noise(seed: u64, noise: NoiseModel) -> Self {
        StabilizerEngine {
            sim: StabilizerSim::with_noise(seed, noise),
        }
    }
}

impl SimEngine for StabilizerEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Stabilizer
    }

    fn noise(&self) -> NoiseModel {
        self.sim.noise_model()
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        // Routed through the simulator so interconnect noise uses the
        // dedicated EPR channel rather than the gate channels.
        self.sim.entangle_epr(qa, qb)
    }

    fn alloc(&mut self) -> QubitId {
        self.sim.alloc()
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.free(q)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure_and_free(q)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        self.sim.apply(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        self.sim.apply_controlled(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        self.sim.cnot(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.cz(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.swap(a, b)
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure(q)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        self.sim.prob_one(q)
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        self.sim.measure_z_parity(qubits)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        self.sim.expectation(terms)
    }

    fn state_vector(&self, _order: &[QubitId]) -> Result<State, SimError> {
        Err(SimError::Unsupported(
            "the stabilizer backend tracks a tableau, not amplitudes; use the state-vector \
             backend for dense snapshots"
                .into(),
        ))
    }

    fn n_qubits(&self) -> usize {
        self.sim.n_qubits()
    }

    fn gate_count(&self) -> u64 {
        self.sim.gate_count()
    }

    fn measurement_count(&self) -> u64 {
        self.sim.measurement_count()
    }
}
