//! Multi-process shard transport: child-process workers behind framed
//! sockets, with respawn-and-replay failover.
//!
//! [`super::remote`] defines the shard protocol ([`ShardCmd`] /
//! [`ShardReply`] / stripe exchanges) and runs it, by default, over cmpi
//! mailboxes between threads. This module carries the *identical* protocol
//! across real OS boundaries: each shard worker is a child process (the
//! `qworker` binary) speaking length-prefixed [`cmpi::transport`] frames
//! over a Unix domain socket or TCP loopback connection back to the
//! controller.
//!
//! ## Topology: one socket per worker, relayed exchanges
//!
//! Every worker holds exactly one connection, to the controller. The
//! controller runs one *router thread* per worker that drains the worker's
//! socket continuously:
//!
//! * `REPLY`/`ACK` frames become `RouterEvent`s on a channel the
//!   controller thread consumes;
//! * worker↔worker `XCHG` frames (cross-shard stripe pairing) are relayed
//!   to the destination worker's socket, with the header's `peer` field
//!   rewritten from destination to source.
//!
//! Because a dedicated router always reads each socket, a worker's writes
//! always drain — and a relay write blocks only while its destination
//! computes, never cyclically. That is the deadlock-freedom argument the
//! mailbox transport gets from unbounded queues.
//!
//! ## Handshake
//!
//! The controller binds a listener, spawns each `qworker <addr> <rank>
//! <epoch> <watchdog_ms>` child, accepts its connection, and reads one
//! `HELLO` frame whose `peer` field authenticates the worker's rank.
//!
//! ## Failover: epochs, abort, replay
//!
//! A dead worker surfaces as an `Eof` router event (its socket closed) or
//! a reply timeout (the deadlock watchdog mapped onto a bounded event
//! wait). Recovery bumps the *epoch*: the dead worker's process is killed
//! and respawned at the new epoch, survivors receive an `ABORT` frame
//! (which makes a worker blocked mid-exchange abandon its batch) and
//! answer `ACK`, and every frame stamped with an older epoch is discarded
//! by whoever reads it. The engine's controller then re-scatters its
//! checkpoint and replays the committed command log — see
//! `super::remote::FailoverState`. Stale commands a survivor processed
//! before seeing the abort are harmless: the checkpoint `Load` overwrites
//! whole stripes.
//!
//! ## Watchdog mapping
//!
//! The in-process engine's deadlock watchdog becomes, out here: a socket
//! read timeout on worker-side exchange waits (expiry exits the process,
//! which the controller sees as EOF), and a bounded event wait on
//! controller-side reply waits (expiry kills and respawns the worker).

use super::remote::{
    worker_loop, DeadWorker, ShardChannel, ShardCmd, ShardReply, WireAmps, WorkerHalt,
};
use bytes::Bytes;
use cmpi::transport::{
    read_frame, write_frame, FrameHeader, TransportKind, WireListener, WireStream, FRAME_OVERHEAD,
};
use cmpi::{from_bytes, to_bytes};
use parking_lot::{Condvar, Mutex};
use qsim::Complex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Frame tags multiplexing the shard protocol over one stream per worker.
const TAG_HELLO: u8 = 1;
const TAG_CMD: u8 = 2;
const TAG_REPLY: u8 = 3;
const TAG_XCHG: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_ACK: u8 = 6;

/// How long a spawned child gets to connect and say HELLO before the
/// spawn is declared failed (an environmental error, not a protocol one).
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);

/// Locates the `qworker` binary: `QMPI_QWORKER_BIN` wins, then the
/// directory of the current executable and its parent (which covers
/// `target/<profile>/deps/<test>` binaries finding `target/<profile>/qworker`).
fn qworker_bin() -> PathBuf {
    if let Ok(p) = std::env::var("QMPI_QWORKER_BIN") {
        return PathBuf::from(p);
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut candidates = Vec::new();
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join("qworker"));
            if let Some(parent) = dir.parent() {
                candidates.push(parent.join("qworker"));
            }
        }
        if let Some(found) = candidates.into_iter().find(|c| c.is_file()) {
            return found;
        }
    }
    panic!(
        "cannot locate the qworker binary for the socket shard transport; build it \
         (`cargo build --bin qworker`) and/or set QMPI_QWORKER_BIN to its path"
    );
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The worker-process end of the transport: one framed socket to the
/// controller, implementing [`ShardChannel`] for the shared
/// [`worker_loop`]. Exchange frames from out-of-order partners and
/// commands that arrive while awaiting an exchange are buffered; frames
/// from an older epoch are discarded.
struct SockChannel {
    stream: WireStream,
    rank: usize,
    epoch: u32,
    watchdog_ms: u64,
    pending_cmds: VecDeque<ShardCmd>,
    pending_xchg: Vec<(usize, Vec<Complex>)>,
}

impl SockChannel {
    fn new(stream: WireStream, rank: usize, epoch: u32, watchdog_ms: u64) -> Self {
        SockChannel {
            stream,
            rank,
            epoch,
            watchdog_ms,
            pending_cmds: VecDeque::new(),
            pending_xchg: Vec::new(),
        }
    }

    /// Enters the `epoch` the abort announces: drop everything buffered
    /// from the old generation and acknowledge.
    fn handle_abort(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.pending_cmds.clear();
        self.pending_xchg.clear();
        let hdr = FrameHeader {
            tag: TAG_ACK,
            epoch,
            peer: self.rank as u32,
        };
        let _ = write_frame(&mut self.stream, &hdr, &[]);
    }
}

impl ShardChannel for SockChannel {
    fn recv_cmd(&mut self) -> Option<ShardCmd> {
        if let Some(c) = self.pending_cmds.pop_front() {
            return Some(c);
        }
        let _ = self.stream.set_read_timeout(None);
        loop {
            let (hdr, body) = read_frame(&mut self.stream).ok()?;
            if hdr.epoch < self.epoch {
                continue;
            }
            match hdr.tag {
                TAG_CMD => return from_bytes::<ShardCmd>(&Bytes::from(body)),
                TAG_XCHG => {
                    let w = from_bytes::<WireAmps>(&Bytes::from(body))?;
                    self.pending_xchg.push((hdr.peer as usize, w.0));
                }
                TAG_ABORT => self.handle_abort(hdr.epoch),
                _ => {}
            }
        }
    }

    fn send_reply(&mut self, reply: &ShardReply) -> Result<(), WorkerHalt> {
        let hdr = FrameHeader {
            tag: TAG_REPLY,
            epoch: self.epoch,
            peer: self.rank as u32,
        };
        write_frame(&mut self.stream, &hdr, &to_bytes(reply)).map_err(|_| WorkerHalt::Exit)?;
        Ok(())
    }

    fn send_xchg(&mut self, partner: usize, amps: Vec<Complex>) -> Result<(), WorkerHalt> {
        let hdr = FrameHeader {
            tag: TAG_XCHG,
            epoch: self.epoch,
            peer: partner as u32,
        };
        write_frame(&mut self.stream, &hdr, &to_bytes(&WireAmps(amps)))
            .map_err(|_| WorkerHalt::Exit)?;
        Ok(())
    }

    fn recv_xchg(&mut self, partner: usize, what: &str) -> Result<Vec<Complex>, WorkerHalt> {
        if let Some(i) = self.pending_xchg.iter().position(|(p, _)| *p == partner) {
            return Ok(self.pending_xchg.remove(i).1);
        }
        let wd = Duration::from_millis(self.watchdog_ms.max(1));
        let _ = self.stream.set_read_timeout(Some(wd));
        let result = loop {
            match read_frame(&mut self.stream) {
                Ok((hdr, body)) => {
                    if hdr.epoch < self.epoch {
                        continue;
                    }
                    match hdr.tag {
                        TAG_XCHG => {
                            let Some(w) = from_bytes::<WireAmps>(&Bytes::from(body)) else {
                                break Err(WorkerHalt::Exit);
                            };
                            if hdr.peer as usize == partner {
                                break Ok(w.0);
                            }
                            self.pending_xchg.push((hdr.peer as usize, w.0));
                        }
                        TAG_CMD => {
                            // The controller pipelines rounds; commands for
                            // later ops can overtake a relayed exchange.
                            let Some(c) = from_bytes::<ShardCmd>(&Bytes::from(body)) else {
                                break Err(WorkerHalt::Exit);
                            };
                            self.pending_cmds.push_back(c);
                        }
                        TAG_ABORT => {
                            self.handle_abort(hdr.epoch);
                            break Err(WorkerHalt::Aborted);
                        }
                        _ => {}
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // The watchdog mapped onto the socket: diagnose and die;
                    // the controller sees EOF and fails over.
                    eprintln!(
                        "remote-shard watchdog: worker {} waited {wd:?} for {what} from \
                         partner {partner}; the partner is presumed dead or deadlocked",
                        self.rank
                    );
                    break Err(WorkerHalt::Exit);
                }
                Err(_) => break Err(WorkerHalt::Exit),
            }
        };
        let _ = self.stream.set_read_timeout(None);
        result
    }
}

/// Entry point of the `qworker` binary: connect back to the controller,
/// authenticate with a HELLO frame, run the shard event loop until the
/// controller hangs up or shuts the worker down.
///
/// Invocation (by `ProcessLink`, not humans):
/// `qworker <addr> <rank> <epoch> <watchdog_ms>`.
pub fn qworker_main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 5 {
        eprintln!("usage: qworker <addr> <rank> <epoch> <watchdog_ms>");
        std::process::exit(2);
    }
    let addr = &args[1];
    let rank: usize = args[2].parse().expect("qworker: rank must be an integer");
    let epoch: u32 = args[3].parse().expect("qworker: epoch must be an integer");
    let watchdog_ms: u64 = args[4]
        .parse()
        .expect("qworker: watchdog must be milliseconds");
    let mut stream = WireStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("qworker: cannot connect to controller at {addr}: {e}");
        std::process::exit(1);
    });
    let hello = FrameHeader {
        tag: TAG_HELLO,
        epoch,
        peer: rank as u32,
    };
    if write_frame(&mut stream, &hello, &[]).is_err() {
        std::process::exit(1);
    }
    let mut chan = SockChannel::new(stream, rank, epoch, watchdog_ms);
    worker_loop(&mut chan);
}

// ---------------------------------------------------------------------------
// Controller side
// ---------------------------------------------------------------------------

/// What a worker's router thread feeds the controller.
enum RouterEvent {
    /// A decoded reply frame (epoch-stamped; stale ones are discarded).
    Reply {
        from: usize,
        epoch: u32,
        reply: ShardReply,
    },
    /// The worker acknowledged an abort into `epoch`.
    Ack { from: usize, epoch: u32 },
    /// The worker's socket closed (or sent garbage): it is dead.
    /// `router_id` guards against a stale router of an already-respawned
    /// worker condemning its successor.
    Eof { from: usize, router_id: u64 },
}

struct WorkerSlot {
    child: Child,
    /// Identity of the router generation currently reading this worker.
    router_id: u64,
}

/// The controller's half of the multi-process transport: child processes,
/// their shared writers (command path + relay path), router threads, and
/// the failover bookkeeping (epoch, dead set, respawn count).
pub(crate) struct ProcessLink {
    listener: WireListener,
    addr: String,
    bin: PathBuf,
    shards: usize,
    epoch: u32,
    watchdog: Arc<AtomicU64>,
    /// Write halves, indexed by shard. Stable `Arc` so router threads can
    /// relay into them across respawns (the `Option` is replaced, not the
    /// slot). `None` = currently no live connection.
    writers: Arc<Vec<Mutex<Option<WireStream>>>>,
    slots: Vec<WorkerSlot>,
    events_tx: mpsc::Sender<RouterEvent>,
    events_rx: mpsc::Receiver<RouterEvent>,
    next_router_id: u64,
    dead: HashSet<usize>,
    /// Current-epoch replies that arrived while awaiting another shard's.
    pending: HashMap<usize, VecDeque<ShardReply>>,
    respawns: u64,
    wire_bytes: Arc<AtomicU64>,
}

impl ProcessLink {
    /// Binds the listener and spawns `shards` worker processes, each
    /// connected and authenticated. `watchdog` (milliseconds) is passed to
    /// every worker at spawn time.
    pub(crate) fn spawn(
        kind: TransportKind,
        shards: usize,
        watchdog: Arc<AtomicU64>,
    ) -> io::Result<ProcessLink> {
        let listener = WireListener::bind(kind)?;
        let addr = listener.addr()?;
        let bin = qworker_bin();
        let (events_tx, events_rx) = mpsc::channel();
        let writers = Arc::new(
            (0..shards)
                .map(|_| Mutex::new(None))
                .collect::<Vec<Mutex<Option<WireStream>>>>(),
        );
        let mut link = ProcessLink {
            listener,
            addr,
            bin,
            shards,
            epoch: 0,
            watchdog,
            writers,
            slots: Vec::with_capacity(shards),
            events_tx,
            events_rx,
            next_router_id: 0,
            dead: HashSet::new(),
            pending: HashMap::new(),
            respawns: 0,
            wire_bytes: Arc::new(AtomicU64::new(0)),
        };
        for s in 0..shards {
            link.spawn_worker(s)?;
        }
        Ok(link)
    }

    /// Shard (worker process) count.
    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    /// Total bytes put on the wire so far (frames in both directions,
    /// including relayed exchanges).
    pub(crate) fn wire_bytes(&self) -> u64 {
        self.wire_bytes.load(Ordering::Relaxed)
    }

    /// Worker processes respawned by failover so far.
    pub(crate) fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Spawns (or respawns) shard `shard`'s worker process: launch the
    /// child at the current epoch, accept its connection, verify its
    /// HELLO, start its router.
    fn spawn_worker(&mut self, shard: usize) -> io::Result<()> {
        let rank = shard + 1;
        let child = Command::new(&self.bin)
            .arg(&self.addr)
            .arg(rank.to_string())
            .arg(self.epoch.to_string())
            .arg(self.watchdog.load(Ordering::Relaxed).to_string())
            .stdin(Stdio::null())
            .spawn()?;
        let stream = self.listener.accept_timeout(SPAWN_TIMEOUT)?;
        stream.set_read_timeout(Some(SPAWN_TIMEOUT))?;
        let mut reader = stream.try_clone()?;
        let (hello, _) = read_frame(&mut reader)?;
        if hello.tag != TAG_HELLO || hello.peer as usize != rank {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "worker handshake: expected HELLO from rank {rank}, got tag {} peer {}",
                    hello.tag, hello.peer
                ),
            ));
        }
        stream.set_read_timeout(None)?;
        *self.writers[shard].lock() = Some(stream);
        let router_id = self.next_router_id;
        self.next_router_id += 1;
        let slot = WorkerSlot { child, router_id };
        if shard < self.slots.len() {
            self.slots[shard] = slot;
        } else {
            self.slots.push(slot);
        }
        self.spawn_router(shard, reader, router_id);
        Ok(())
    }

    /// Starts the router thread that drains worker `shard`'s socket:
    /// replies and acks become events, exchange frames are relayed to
    /// their destination worker with `peer` rewritten to name the source.
    fn spawn_router(&self, shard: usize, mut reader: WireStream, router_id: u64) {
        let writers = Arc::clone(&self.writers);
        let events = self.events_tx.clone();
        let bytes = Arc::clone(&self.wire_bytes);
        let from_rank = (shard + 1) as u32;
        std::thread::spawn(move || loop {
            match read_frame(&mut reader) {
                Ok((hdr, body)) => {
                    bytes.fetch_add((FRAME_OVERHEAD + body.len()) as u64, Ordering::Relaxed);
                    match hdr.tag {
                        TAG_REPLY => match from_bytes::<ShardReply>(&Bytes::from(body)) {
                            Some(reply) => {
                                let _ = events.send(RouterEvent::Reply {
                                    from: shard,
                                    epoch: hdr.epoch,
                                    reply,
                                });
                            }
                            None => {
                                // A worker speaking garbage is as dead as
                                // one speaking nothing.
                                let _ = events.send(RouterEvent::Eof {
                                    from: shard,
                                    router_id,
                                });
                                return;
                            }
                        },
                        TAG_XCHG => {
                            let dest = (hdr.peer as usize).wrapping_sub(1);
                            if let Some(slot) = writers.get(dest) {
                                let mut guard = slot.lock();
                                if let Some(stream) = guard.as_mut() {
                                    let out = FrameHeader {
                                        tag: TAG_XCHG,
                                        epoch: hdr.epoch,
                                        peer: from_rank,
                                    };
                                    // A failed relay means the destination
                                    // died; its own EOF surfaces that.
                                    if let Ok(n) = write_frame(stream, &out, &body) {
                                        bytes.fetch_add(n as u64, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        TAG_ACK => {
                            let _ = events.send(RouterEvent::Ack {
                                from: shard,
                                epoch: hdr.epoch,
                            });
                        }
                        _ => {}
                    }
                }
                Err(_) => {
                    let _ = events.send(RouterEvent::Eof {
                        from: shard,
                        router_id,
                    });
                    return;
                }
            }
        });
    }

    /// Writes one frame to shard `shard`'s socket, accounting its bytes.
    fn write_to(&mut self, shard: usize, tag: u8, body: &[u8]) -> Result<(), DeadWorker> {
        if self.dead.contains(&shard) {
            return Err(DeadWorker);
        }
        let hdr = FrameHeader {
            tag,
            epoch: self.epoch,
            peer: 0,
        };
        let mut guard = self.writers[shard].lock();
        let Some(stream) = guard.as_mut() else {
            drop(guard);
            self.dead.insert(shard);
            return Err(DeadWorker);
        };
        match write_frame(stream, &hdr, body) {
            Ok(n) => {
                drop(guard);
                self.wire_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                *guard = None;
                drop(guard);
                self.dead.insert(shard);
                Err(DeadWorker)
            }
        }
    }

    /// Sends one protocol command to shard `shard`.
    pub(crate) fn send_cmd(&mut self, shard: usize, cmd: &ShardCmd) -> Result<(), DeadWorker> {
        self.write_to(shard, TAG_CMD, &to_bytes(cmd))
    }

    /// Processes one router event against the dead set / pending buffers.
    /// Returns the reply if it is a current-epoch reply from `want`.
    fn absorb_event(
        &mut self,
        event: RouterEvent,
        want: usize,
    ) -> Option<Result<ShardReply, DeadWorker>> {
        match event {
            RouterEvent::Reply { from, epoch, reply } if epoch == self.epoch => {
                if from == want {
                    return Some(Ok(reply));
                }
                self.pending.entry(from).or_default().push_back(reply);
            }
            RouterEvent::Eof { from, router_id } if router_id == self.slots[from].router_id => {
                *self.writers[from].lock() = None;
                self.dead.insert(from);
                if from == want {
                    return Some(Err(DeadWorker));
                }
            }
            // Stale replies, stale EOFs, out-of-protocol acks.
            _ => {}
        }
        None
    }

    /// Awaits shard `shard`'s next current-epoch reply, up to `wd`. Expiry
    /// means the worker is dead *or* deadlocked — either way it is killed
    /// and reported dead, and failover respawns it.
    pub(crate) fn reply_from(
        &mut self,
        shard: usize,
        wd: Duration,
    ) -> Result<ShardReply, DeadWorker> {
        if self.dead.contains(&shard) {
            return Err(DeadWorker);
        }
        if let Some(r) = self.pending.get_mut(&shard).and_then(|q| q.pop_front()) {
            return Ok(r);
        }
        let deadline = Instant::now() + wd;
        loop {
            let now = Instant::now();
            if now >= deadline {
                let _ = self.slots[shard].child.kill();
                self.dead.insert(shard);
                return Err(DeadWorker);
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(event) => {
                    if let Some(outcome) = self.absorb_event(event, shard) {
                        return outcome;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("the link holds an event sender")
                }
            }
        }
    }

    /// Restarts the worker generation after deaths: bump the epoch, kill
    /// and respawn every dead worker at it, abort the survivors into it
    /// and collect their acks. `Err` means further workers died during the
    /// restart; the caller loops (with a budget).
    pub(crate) fn restart_generation(&mut self, wd: Duration) -> Result<(), DeadWorker> {
        self.epoch += 1;
        self.pending.clear();
        let dead: Vec<usize> = self.dead.drain().collect();
        for &s in &dead {
            // A "dead" entry may be a live-but-deadlocked process (reply
            // timeout); make it properly dead before replacing it.
            let _ = self.slots[s].child.kill();
            let _ = self.slots[s].child.wait();
            if let Some(stale) = self.writers[s].lock().take() {
                stale.shutdown();
            }
        }
        for &s in &dead {
            self.spawn_worker(s).unwrap_or_else(|e| {
                panic!("remote-shard failover: cannot respawn shard {s}'s worker: {e}")
            });
            self.respawns += 1;
        }
        let live: Vec<usize> = (0..self.shards).filter(|s| !dead.contains(s)).collect();
        for &s in &live {
            if self.write_to(s, TAG_ABORT, &[]).is_err() {
                return Err(DeadWorker);
            }
        }
        let mut acked: HashSet<usize> = HashSet::new();
        let deadline = Instant::now() + wd;
        while acked.len() < live.len() {
            let now = Instant::now();
            if now >= deadline {
                for &s in &live {
                    if !acked.contains(&s) {
                        let _ = self.slots[s].child.kill();
                        self.dead.insert(s);
                    }
                }
                return Err(DeadWorker);
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(RouterEvent::Ack { from, epoch }) if epoch == self.epoch => {
                    acked.insert(from);
                }
                Ok(RouterEvent::Eof { from, router_id })
                    if router_id == self.slots[from].router_id =>
                {
                    *self.writers[from].lock() = None;
                    self.dead.insert(from);
                    return Err(DeadWorker);
                }
                Ok(_) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("the link holds an event sender")
                }
            }
        }
        Ok(())
    }

    /// SIGKILLs shard `shard`'s worker process (test hook for failover).
    pub(crate) fn kill_child(&mut self, shard: usize) {
        let _ = self.slots[shard].child.kill();
    }
}

impl Drop for ProcessLink {
    fn drop(&mut self) {
        // Best-effort clean shutdown, then close every connection (which
        // unblocks any worker still reading) and reap the children.
        for s in 0..self.shards {
            let _ = self.write_to(s, TAG_CMD, &to_bytes(&ShardCmd::Shutdown));
        }
        for w in self.writers.iter() {
            if let Some(stream) = w.lock().take() {
                stream.shutdown();
            }
        }
        for slot in &mut self.slots {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match slot.child.try_wait() {
                    Ok(Some(_)) | Err(_) => break,
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            let _ = slot.child.kill();
                            let _ = slot.child.wait();
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
    }
}

/// How a process link travels inside the engine: owned outright (children
/// die with the engine) or leased from a [`ProcessWorkerPool`] (the link
/// returns to the pool on drop, children still running).
pub(crate) struct ProcessHandle {
    link: Option<ProcessLink>,
    pool: Option<Arc<ProcPoolShared>>,
}

impl ProcessHandle {
    pub(crate) fn owned(link: ProcessLink) -> Self {
        ProcessHandle {
            link: Some(link),
            pool: None,
        }
    }

    fn pooled(link: ProcessLink, pool: Arc<ProcPoolShared>) -> Self {
        ProcessHandle {
            link: Some(link),
            pool: Some(pool),
        }
    }

    pub(crate) fn link(&mut self) -> &mut ProcessLink {
        self.link.as_mut().expect("link present until drop")
    }

    pub(crate) fn link_ref(&self) -> &ProcessLink {
        self.link.as_ref().expect("link present until drop")
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        if let Some(link) = self.link.take() {
            match &self.pool {
                Some(pool) => pool.give_back(link),
                None => drop(link),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Process-worker pool
// ---------------------------------------------------------------------------

struct ProcPoolState {
    free: Vec<ProcessLink>,
    closing: bool,
}

struct ProcPoolShared {
    state: Mutex<ProcPoolState>,
    cv: Condvar,
    shards: usize,
    slots: usize,
}

impl ProcPoolShared {
    fn give_back(&self, link: ProcessLink) {
        let mut st = self.state.lock();
        if st.closing {
            drop(st);
            drop(link); // shuts the children down
        } else {
            st.free.push(link);
            drop(st);
            self.cv.notify_one();
        }
    }
}

/// A long-lived pool of process-worker worlds for socket-transport
/// [`super::RemoteShardedEngine`]s — the multi-process analogue of
/// [`super::ShardWorkerPool`]. Each slot is an independent
/// `ProcessLink` whose child processes outlive individual engines;
/// leasing hands one engine exclusive use
/// ([`super::RemoteShardedEngine::from_process_lease`]), and dropping that
/// engine returns the slot, children still running. Dropping the pool
/// terminates every child.
pub struct ProcessWorkerPool {
    shared: Arc<ProcPoolShared>,
    watchdog: Arc<AtomicU64>,
}

impl ProcessWorkerPool {
    /// Spawns `slots` process-worker worlds of `shards` child processes
    /// each, over `kind` (which must be a multi-process transport).
    pub fn new(slots: usize, shards: usize, kind: TransportKind) -> Self {
        assert!(slots > 0, "need at least one pool slot");
        assert!(
            kind.is_multiprocess(),
            "a process-worker pool needs a multi-process transport, not {kind}"
        );
        let shards = qsim::sharded::normalize_shards(shards, super::remote::MAX_REMOTE_SHARD_BITS);
        let watchdog = Arc::new(AtomicU64::new(
            super::remote::watchdog_from_env().as_millis() as u64,
        ));
        let free = (0..slots)
            .map(|_| {
                ProcessLink::spawn(kind, shards, Arc::clone(&watchdog)).unwrap_or_else(|e| {
                    panic!("cannot spawn {kind} shard worker processes for the pool: {e}")
                })
            })
            .collect();
        ProcessWorkerPool {
            shared: Arc::new(ProcPoolShared {
                state: Mutex::new(ProcPoolState {
                    free,
                    closing: false,
                }),
                cv: Condvar::new(),
                shards,
                slots,
            }),
            watchdog,
        }
    }

    /// Worker (shard) count per slot, after normalization.
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.shared.slots
    }

    /// Slots currently free (racy by nature; a scheduling heuristic).
    pub fn available(&self) -> usize {
        self.shared.state.lock().free.len()
    }

    /// Leases a slot, blocking until one frees.
    pub fn lease(&self) -> ProcessShardLease {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(link) = st.free.pop() {
                return self.wrap(link);
            }
            self.cv_wait(&mut st);
        }
    }

    /// Leases a slot if one is free right now.
    pub fn try_lease(&self) -> Option<ProcessShardLease> {
        let mut st = self.shared.state.lock();
        st.free.pop().map(|link| self.wrap(link))
    }

    /// Leases a slot, blocking up to `timeout`; `None` on expiry.
    pub fn lease_timeout(&self, timeout: Duration) -> Option<ProcessShardLease> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(link) = st.free.pop() {
                return Some(self.wrap(link));
            }
            if Instant::now() >= deadline {
                return None;
            }
            let _ = self.shared.cv.wait_until(&mut st, deadline);
        }
    }

    fn cv_wait(&self, st: &mut parking_lot::MutexGuard<'_, ProcPoolState>) {
        self.shared.cv.wait(st);
    }

    fn wrap(&self, link: ProcessLink) -> ProcessShardLease {
        ProcessShardLease {
            link: Some(link),
            shared: Arc::clone(&self.shared),
            watchdog: Arc::clone(&self.watchdog),
        }
    }
}

impl Drop for ProcessWorkerPool {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.closing = true;
        let free = std::mem::take(&mut st.free);
        drop(st);
        // Leased slots shut down when their handle drops (give_back
        // observes `closing`); the free ones shut down here.
        drop(free);
    }
}

/// Exclusive use of one [`ProcessWorkerPool`] slot, consumed by
/// [`super::RemoteShardedEngine::from_process_lease`]. Dropping it unused
/// returns the slot untouched.
pub struct ProcessShardLease {
    link: Option<ProcessLink>,
    shared: Arc<ProcPoolShared>,
    watchdog: Arc<AtomicU64>,
}

impl ProcessShardLease {
    /// Worker (shard) count of the leased slot.
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// Resets the slot for a fresh engine — an epoch bump aborts whatever
    /// protocol a panicked previous lessee left dangling (respawning any
    /// workers it got killed) — and converts the lease into the engine's
    /// link handle.
    pub(crate) fn into_handle(mut self) -> (ProcessHandle, Arc<AtomicU64>, usize) {
        let mut link = self
            .link
            .take()
            .expect("lease holds its link until consumed");
        let wd = Duration::from_millis(self.watchdog.load(Ordering::Relaxed).max(1));
        let mut attempts = 0usize;
        while link.restart_generation(wd).is_err() {
            attempts += 1;
            assert!(
                attempts <= 16,
                "process-pool lease reset: workers keep dying during the reset"
            );
        }
        let shards = link.shards();
        (
            ProcessHandle::pooled(link, Arc::clone(&self.shared)),
            Arc::clone(&self.watchdog),
            shards,
        )
    }
}

impl Drop for ProcessShardLease {
    fn drop(&mut self) {
        if let Some(link) = self.link.take() {
            self.shared.give_back(link);
        }
    }
}
