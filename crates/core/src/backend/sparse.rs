//! The sparse full-state engine: real amplitudes at paper-scale rank counts.

use super::{BackendKind, SimEngine};
use qsim::noise::NoiseModel;
use qsim::sparse::SparseSim;
use qsim::{Gate, Pauli, QubitId, SimError, State};

/// Sparse-amplitude engine over [`qsim::sparse::SparseSim`]. Exact for
/// arbitrary gates like the dense engine — bit-identical to it under the
/// canonical rule documented in [`qsim::sparse`] — but memory scales with
/// the number of *nonzero* amplitudes instead of `2^n`, so structured
/// states (cat/GHZ spanning trees, teleport chains) carry real amplitudes
/// at hundreds of ranks where every dense backend is out of memory.
pub struct SparseEngine {
    sim: SparseSim,
}

impl SparseEngine {
    /// Creates a noiseless engine with a deterministic measurement RNG seed.
    pub fn new(seed: u64) -> Self {
        SparseEngine {
            sim: SparseSim::new(seed),
        }
    }

    /// Creates an engine that applies `noise` as stochastic Pauli/Kraus
    /// trajectory insertions (see [`qsim::noise`]), with the same RNG
    /// stream discipline as the dense engine.
    pub fn with_noise(seed: u64, noise: NoiseModel) -> Self {
        SparseEngine {
            sim: SparseSim::with_noise(seed, noise),
        }
    }

    /// Number of nonzero amplitudes currently stored — the working-set
    /// size that stays small for the paper's structured states.
    pub fn nonzero_count(&self) -> usize {
        self.sim.nonzero_count()
    }
}

impl SimEngine for SparseEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Sparse
    }

    fn noise(&self) -> NoiseModel {
        self.sim.noise_model()
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        // Routed through the simulator so interconnect noise uses the
        // dedicated EPR channel rather than the gate channels.
        self.sim.entangle_epr(qa, qb)
    }

    fn alloc(&mut self) -> QubitId {
        self.sim.alloc()
    }

    fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.free(q)
    }

    fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure_and_free(q)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        self.sim.apply(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        self.sim.apply_controlled(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> Result<(), SimError> {
        self.sim.cnot(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.cz(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.sim.swap(a, b)
    }

    fn apply_fused_1q(&mut self, q: QubitId, m: &qsim::gates::Mat2) -> Result<(), SimError> {
        self.sim.apply_fused_1q(q, m)
    }

    fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> Result<(), SimError> {
        self.sim.apply_phase_sweep(diags, czs)
    }

    fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        self.sim.measure(q)
    }

    fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        self.sim.prob_one(q)
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        self.sim.measure_z_parity(qubits)
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        self.sim.expectation(terms)
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        self.sim.state_vector(order)
    }

    fn amplitude_of(&self, ones: &[QubitId]) -> Result<qsim::Complex, SimError> {
        self.sim.amplitude_of(ones)
    }

    fn n_qubits(&self) -> usize {
        self.sim.n_qubits()
    }

    fn gate_count(&self) -> u64 {
        self.sim.gate_count()
    }

    fn measurement_count(&self) -> u64 {
        self.sim.measurement_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{build_backend, BackendKind, DIAG_RANK};
    use cmpi::TransportKind;

    #[test]
    fn engine_reports_its_kind_and_counts() {
        let mut e = SparseEngine::new(3);
        assert_eq!(e.kind(), BackendKind::Sparse);
        let a = e.alloc();
        let b = e.alloc();
        e.entangle_epr(a, b).unwrap();
        assert_eq!(e.gate_count(), 2); // H + CNOT
        assert_eq!(e.nonzero_count(), 2);
        let ma = e.measure(a).unwrap();
        let mb = e.measure_and_free(b).unwrap();
        assert_eq!(ma, mb, "EPR halves must agree");
        assert_eq!(e.measurement_count(), 2);
    }

    #[test]
    fn backend_amplitude_probe_works_through_the_wrapper() {
        let backend = build_backend(
            BackendKind::Sparse,
            TransportKind::InProcess,
            11,
            NoiseModel::ideal(),
        )
        .unwrap();
        let q = backend.alloc(0, 3);
        backend.apply(0, Gate::H, q[0]).unwrap();
        backend.cnot(0, q[0], q[1]).unwrap();
        backend.cnot(0, q[1], q[2]).unwrap();
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let a0 = backend.amplitude_of(0, &[]).unwrap();
        let a1 = backend.amplitude_of(DIAG_RANK, &q).unwrap();
        assert!((a0.re - h).abs() < 1e-12);
        assert!((a1.re - h).abs() < 1e-12);
        // The probe is ownership-checked like every other rank-scoped read.
        assert!(backend.amplitude_of(1, &q).is_err());
    }

    #[test]
    fn amplitude_probe_unsupported_on_amplitude_less_backends() {
        let backend = build_backend(
            BackendKind::Trace,
            TransportKind::InProcess,
            0,
            NoiseModel::ideal(),
        )
        .unwrap();
        let q = backend.alloc(0, 1);
        assert!(backend.amplitude_of(0, &q).is_err());
    }
}
