//! EPR-pair establishment — `QMPI_Prepare_EPR` / `QMPI_Iprepare_EPR`
//! (Section 4.3): "The basic building block and most time consuming part for
//! all quantum communication is the creation of EPR pairs."
//!
//! Protocol (per pair): both ranks name their fresh |0> qubit to the peer on
//! the control channel; the lower world rank asks the backend (modeling the
//! quantum-coherent interconnect) to entangle the two qubits, then
//! acknowledges. The id exchange and ack are substrate metadata — they are
//! tallied as control messages, not protocol bits (DESIGN.md §5).

use crate::context::{ptag_role, EprRole, ProtoOp, QTag, QmpiRank};
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;

impl QmpiRank {
    /// Establishes an EPR pair between `qubit` (fresh, |0>) on this rank and
    /// a partner qubit on rank `dest`, which must make the matching call.
    /// Upon return the joint state is (|00> + |11>)/sqrt(2).
    pub fn prepare_epr(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        let req = self.iprepare_epr(qubit, dest, tag)?;
        req.wait(self)
    }

    /// Non-blocking EPR establishment (QMPI_Iprepare_EPR): posts the request
    /// immediately so pairs can be prepared ahead of when they are needed
    /// (the key optimization behind Section 4.7's persistent requests).
    /// Complete with [`EprRequest::wait`].
    pub fn iprepare_epr(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<EprRequest> {
        self.iprepare_epr_role(qubit, dest, tag, EprRole::Symmetric)
    }

    /// Role-directed variant used by the directed p2p protocols so that
    /// crossing traffic between the same pair and tag cannot mis-pair.
    pub(crate) fn iprepare_epr_role(
        &self,
        qubit: &Qubit,
        dest: usize,
        tag: QTag,
        role: EprRole,
    ) -> Result<EprRequest> {
        if dest >= self.size() {
            return Err(QmpiError::InvalidArgument(format!(
                "EPR partner rank {dest} out of range (size {})",
                self.size()
            )));
        }
        if dest == self.rank() {
            return Err(QmpiError::InvalidArgument(
                "cannot establish an EPR pair with oneself".into(),
            ));
        }
        // Post our qubit id to the peer on this side's role stream.
        self.proto
            .send(&qubit.id().0, dest, ptag_role(ProtoOp::EprId, role, tag));
        self.ledger.record_control();
        Ok(EprRequest {
            local: qubit.id().0,
            dest,
            tag,
            role,
        })
    }

    pub(crate) fn prepare_epr_role(
        &self,
        qubit: &Qubit,
        dest: usize,
        tag: QTag,
        role: EprRole,
    ) -> Result<()> {
        self.iprepare_epr_role(qubit, dest, tag, role)?.wait(self)
    }
}

/// Pending EPR establishment returned by [`QmpiRank::iprepare_epr`].
#[derive(Debug)]
#[must_use = "an EPR request must be waited on (or cancelled)"]
pub struct EprRequest {
    local: u64,
    dest: usize,
    tag: QTag,
    role: EprRole,
}

impl EprRequest {
    /// The partner rank.
    pub fn partner(&self) -> usize {
        self.dest
    }

    /// Completes the establishment. The lower world rank performs the
    /// entangling operation; the higher rank waits for the acknowledgement.
    pub fn wait(self, ctx: &QmpiRank) -> Result<()> {
        // Flush point: the entangling operation both reads the pair's
        // freshness and changes shared backend state, so this rank's
        // recorded gates must land first — in the same order the eager
        // path would apply them (which is also what keeps the noise-stream
        // draws aligned between batched and unbatched runs).
        ctx.flush()?;
        let my_rank = ctx.rank();
        // The peer posted its id on the opposite role stream.
        let (their_id, _) = ctx.proto.recv::<u64>(
            self.dest,
            ptag_role(ProtoOp::EprId, self.role.opposite(), self.tag),
        );
        if my_rank < self.dest {
            let result = ctx
                .backend
                .entangle_epr(qsim::QubitId(self.local), qsim::QubitId(their_id));
            // Always acknowledge — even on failure — so the peer never
            // blocks forever on a one-sided error.
            let ok = result.is_ok();
            ctx.proto.send(
                &ok,
                self.dest,
                ptag_role(ProtoOp::EprAck, self.role.opposite(), self.tag),
            );
            ctx.ledger.record_control();
            result?;
            ctx.ledger.record_epr_pair();
        } else {
            let (ok, _): (bool, _) = ctx
                .proto
                .recv(self.dest, ptag_role(ProtoOp::EprAck, self.role, self.tag));
            if !ok {
                return Err(QmpiError::Protocol(format!(
                    "EPR establishment with rank {} failed on the peer side",
                    self.dest
                )));
            }
        }
        let level = ctx.ledger.buffer_inc(my_rank);
        ctx.check_buffer(level)?;
        Ok(())
    }

    /// Cancels the request (QMPI_Cancel). The id message may already have
    /// been consumed by the peer — as Table 2 notes, "resources may already
    /// have been used" — so cancellation only suppresses the local wait.
    /// Returns `true` if the pending id message could still be retracted.
    pub fn cancel(self, ctx: &QmpiRank) -> bool {
        // Our substrate cannot recall a delivered message; report whether
        // the peer had consumed it (probe on the ack/id channel is not
        // possible from here), so conservatively report false.
        let _ = ctx;
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{run, run_with_config, QmpiConfig};
    use crate::error::QmpiError;

    #[test]
    fn prepare_epr_gives_correlated_measurements() {
        // The paper's Section 6 example program.
        let out = run(2, |ctx| {
            let q = ctx.alloc_one();
            let dest = 1 - ctx.rank();
            ctx.prepare_epr(&q, dest, 0).unwrap();

            ctx.measure_and_free(q).unwrap()
        });
        assert_eq!(out[0], out[1], "both ranks observe the same value");
    }

    #[test]
    fn epr_counts_one_pair() {
        let out = run(2, |ctx| {
            let (delta, q) = ctx.measure_resources(|| {
                let q = ctx.alloc_one();
                ctx.prepare_epr(&q, 1 - ctx.rank(), 0).unwrap();
                q
            });
            ctx.measure_and_free(q).unwrap();
            delta
        });
        assert_eq!(out[0].epr_pairs, 1, "pair counted once, not per endpoint");
        assert_eq!(out[0].classical_bits, 0, "EPR setup costs no protocol bits");
    }

    #[test]
    fn multiple_pairs_with_distinct_tags() {
        let out = run(2, |ctx| {
            let q1 = ctx.alloc_one();
            let q2 = ctx.alloc_one();
            let dest = 1 - ctx.rank();
            // Issue both asynchronously, then complete.
            let r1 = ctx.iprepare_epr(&q1, dest, 1).unwrap();
            let r2 = ctx.iprepare_epr(&q2, dest, 2).unwrap();
            r1.wait(ctx).unwrap();
            r2.wait(ctx).unwrap();
            let m1 = ctx.measure_and_free(q1).unwrap();
            let m2 = ctx.measure_and_free(q2).unwrap();
            (m1, m2)
        });
        assert_eq!(out[0].0, out[1].0);
        assert_eq!(out[0].1, out[1].1);
    }

    #[test]
    fn self_epr_rejected() {
        let out = run(1, |ctx| {
            let q = ctx.alloc_one();
            let err = ctx.prepare_epr(&q, 0, 0).unwrap_err();
            ctx.free_qmem(q).unwrap();
            matches!(err, QmpiError::InvalidArgument(_))
        });
        assert!(out[0]);
    }

    #[test]
    fn non_fresh_qubit_rejected() {
        let out = run(2, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() == 0 {
                ctx.x(&q).unwrap();
            }
            let r = ctx.prepare_epr(&q, 1 - ctx.rank(), 0);
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.measure_and_free(q).unwrap();
            } else {
                // Rank 1 may or may not see the error depending on which
                // side entangles; its qubit may be left untouched.
                ctx.measure_and_free(q).unwrap();
            }
            r.is_err()
        });
        // Rank 0 is the entangler (lower rank) and must fail.
        assert!(out[0]);
    }

    #[test]
    fn s_limit_enforced() {
        let cfg = QmpiConfig::new().seed(1).s_limit(1);
        let out = run_with_config(2, cfg, |ctx| {
            let dest = 1 - ctx.rank();
            let q1 = ctx.alloc_one();
            let q2 = ctx.alloc_one();
            let ok1 = ctx.prepare_epr(&q1, dest, 1).is_ok();
            // Second buffered pair exceeds S = 1.
            let ok2 = ctx.prepare_epr(&q2, dest, 2).is_ok();
            ctx.barrier();
            ctx.measure_and_free(q1).unwrap();
            ctx.measure_and_free(q2).unwrap();
            (ok1, ok2)
        });
        assert_eq!(out[0], (true, false));
        assert_eq!(out[1], (true, false));
    }

    #[test]
    fn buffer_gauge_returns_to_zero_after_consumption() {
        let out = run(2, |ctx| {
            let dest = 1 - ctx.rank();
            let q = ctx.alloc_one();
            ctx.prepare_epr(&q, dest, 0).unwrap();
            let during = ctx.ledger().buffer_level(ctx.rank());
            // Consuming the half: measure it away and release the buffer.
            ctx.measure_and_free(q).unwrap();
            ctx.ledger().buffer_dec(ctx.rank());
            ctx.barrier();
            (during, ctx.ledger().buffer_level(ctx.rank()))
        });
        for (during, after) in out {
            assert_eq!(during, 1);
            assert_eq!(after, 0);
        }
    }
}
