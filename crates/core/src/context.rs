//! QMPI world setup and the per-rank context handle.
//!
//! [`run`] is the analogue of launching a QMPI program with `mpirun`: it
//! starts `n` ranks, wires them to a shared simulation [`QuantumBackend`],
//! and hands each a [`QmpiRank`] — the `QMPI_COMM_WORLD` of the paper. All quantum
//! nodes also speak classical MPI (Section 4.1), exposed via
//! [`QmpiRank::classical`].

use crate::backend::{BackendKind, QuantumBackend};
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;
use crate::resources::{ResourceLedger, ResourceSnapshot};
use cmpi::{Communicator, TransportKind, Universe};
use qsim::noise::NoiseModel;
use std::sync::Arc;

/// User-visible message tag (the paper's `tag` argument).
pub type QTag = u16;

/// Internal protocol channels, namespaced into the high bits of the
/// classical substrate's 32-bit tag space.
#[derive(Clone, Copy, Debug)]
#[repr(u32)]
pub(crate) enum ProtoOp {
    /// EPR rendezvous: qubit-id exchange.
    EprId = 1,
    /// EPR rendezvous: establishment acknowledgement.
    EprAck = 2,
    /// Entangled-copy fixup bit (QMPI_Send -> Recv).
    CopyFix = 3,
    /// Uncopy fixup bit (QMPI_Unrecv -> Unsend).
    UncopyFix = 4,
    /// Teleportation fixup bits (QMPI_Send_move -> Recv_move).
    MoveFix = 5,
}

/// Which side of a directed p2p operation an EPR preparation belongs to.
/// Crossing traffic (both ranks sending to each other with the same tag,
/// e.g. `QMPI_Sendrecv_replace`) must not mis-pair rendezvous messages, so
/// the origin and target sides post on distinct streams; the symmetric
/// role serves the public `QMPI_Prepare_EPR`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EprRole {
    /// Both sides call `QMPI_Prepare_EPR` symmetrically.
    Symmetric,
    /// The sending side of a directed operation.
    Origin,
    /// The receiving side of a directed operation.
    Target,
}

impl EprRole {
    pub(crate) fn opposite(self) -> EprRole {
        match self {
            EprRole::Symmetric => EprRole::Symmetric,
            EprRole::Origin => EprRole::Target,
            EprRole::Target => EprRole::Origin,
        }
    }

    fn bits(self) -> u32 {
        match self {
            EprRole::Symmetric => 0,
            EprRole::Origin => 1,
            EprRole::Target => 2,
        }
    }
}

pub(crate) fn ptag(op: ProtoOp, user_tag: QTag) -> cmpi::Tag {
    ((op as u32) << 20) | user_tag as u32
}

pub(crate) fn ptag_role(op: ProtoOp, role: EprRole, user_tag: QTag) -> cmpi::Tag {
    ((op as u32) << 20) | (role.bits() << 16) | user_tag as u32
}

/// How a rank's pending gate stream batches, optimizes, and flushes.
///
/// Gate calls append to a per-rank [`qsim::GateBatch`]; the policy bounds
/// the memory such a stream can pin (the op and byte budgets) and decides
/// whether the plan-time optimizer ([`qsim::optimize`]) rewrites each
/// batch into fused kernel sweeps before dispatch. Defaults come from the
/// environment at [`QmpiConfig::new`] time (`QMPI_BATCH_OPS`,
/// `QMPI_BATCH_BYTES`, `QMPI_FUSE`, and the legacy `QMPI_BATCH` kill
/// switch), so an explicit [`QmpiConfig::batch`] call always wins over the
/// environment.
///
/// ```
/// use qmpi::{BatchPolicy, QmpiConfig};
///
/// let cfg = QmpiConfig::new().batch(BatchPolicy {
///     max_ops: 64,
///     ..BatchPolicy::default()
/// });
/// assert_eq!(cfg.batch_policy().max_ops, 64);
/// assert!(!BatchPolicy::eager().is_batching());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Auto-flush once this many ops are pending. `0` disables batching
    /// entirely: every gate call dispatches eagerly through the per-gate
    /// backend surface, exactly like the pre-batching engines.
    pub max_ops: usize,
    /// Auto-flush once the pending stream's approximate in-memory size
    /// ([`qsim::GateBatch::approx_bytes`]) reaches this many bytes —
    /// bounds memory without cutting fusion windows at an arbitrary op
    /// count when ops are small.
    pub max_bytes: usize,
    /// Run the plan-time optimizer on every flushed batch (1q-run fusion
    /// and diagonal phase-sweep merging; see [`qsim::optimize`]). Only
    /// consulted where fusion is sound: amplitude-class backends under an
    /// ideal noise model. Latency stays bounded by the flush points
    /// themselves — fusion never delays dispatch.
    pub fuse: bool,
    /// Merge concurrent ranks' flushed plans into shared per-worker frames
    /// (cross-rank coalescing; see `docs/ARCHITECTURE.md`). With it on
    /// (the default), a rank's flush *appends* its optimized segment to a
    /// backend-side coalesce window instead of dispatching immediately;
    /// the window ships as one merged command round per worker when any
    /// rank hits a synchronization point or a budget trips. Off restores
    /// the one-round-per-rank-flush behavior (`QMPI_COALESCE=off`).
    pub coalesce: bool,
    /// Time budget for an open coalesce window, in milliseconds: a flush
    /// that finds the window older than this ships it immediately, so a
    /// busy rank cannot stall a previously flushed rank's gates
    /// indefinitely. `0` (the default) disables the age check — windows
    /// then ship only at synchronization points and op/byte budgets, which
    /// keeps round counts deterministic (timing-independent) per seed.
    /// Override with `QMPI_BATCH_AGE_MS`.
    pub max_age_ms: u64,
}

impl Default for BatchPolicy {
    /// 4096 pending ops or ~1 MiB of recorded stream, optimizer and
    /// cross-rank coalescing on, no window age budget.
    fn default() -> Self {
        BatchPolicy {
            max_ops: 4096,
            max_bytes: 1 << 20,
            fuse: true,
            coalesce: true,
            max_age_ms: 0,
        }
    }
}

impl BatchPolicy {
    /// The no-batching policy: every gate dispatches at its call site.
    pub fn eager() -> Self {
        BatchPolicy {
            max_ops: 0,
            max_bytes: 0,
            fuse: false,
            coalesce: false,
            max_age_ms: 0,
        }
    }

    /// Whether gate calls accumulate at all (`max_ops > 0`).
    pub fn is_batching(&self) -> bool {
        self.max_ops > 0
    }

    /// The [`BatchPolicy::default`] with environment overrides applied:
    /// `QMPI_BATCH_OPS` / `QMPI_BATCH_BYTES` (decimal sizes),
    /// `QMPI_FUSE` (`off`/`0`/`false` disables the optimizer — CI's
    /// fusion-off cross-check lane), `QMPI_COALESCE` (`off`/`0`/`false`
    /// restores one command round per rank flush), and
    /// `QMPI_BATCH_AGE_MS` (window age budget in milliseconds, `0`
    /// disables). Unparsable values are ignored.
    pub fn env_default() -> Self {
        let mut p = BatchPolicy::default();
        if let Some(v) = env_usize("QMPI_BATCH_OPS") {
            p.max_ops = v;
        }
        if let Some(v) = env_usize("QMPI_BATCH_BYTES") {
            p.max_bytes = v;
        }
        if let Ok(v) = std::env::var("QMPI_FUSE") {
            p.fuse = !matches!(v.to_lowercase().as_str(), "off" | "0" | "false");
        }
        if let Ok(v) = std::env::var("QMPI_COALESCE") {
            p.coalesce = !matches!(v.to_lowercase().as_str(), "off" | "0" | "false");
        }
        if let Some(v) = env_usize("QMPI_BATCH_AGE_MS") {
            p.max_age_ms = v as u64;
        }
        p
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// World configuration, built fluently:
///
/// ```
/// use qmpi::{BackendKind, QmpiConfig};
///
/// let cfg = QmpiConfig::new()
///     .seed(7)
///     .s_limit(4)
///     .backend(BackendKind::Stabilizer);
/// assert_eq!(cfg.backend_kind(), BackendKind::Stabilizer);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct QmpiConfig {
    /// Measurement RNG seed (deterministic runs).
    pub(crate) seed: u64,
    /// Optional per-rank EPR buffer limit — the SENDQ `S` parameter.
    /// Exceeding it is an error, so algorithms can be validated against a
    /// target machine's buffer budget.
    pub(crate) s_limit: Option<u32>,
    /// Which simulation engine backs the world.
    pub(crate) backend: BackendKind,
    /// Where the backend's shard workers live (in-process threads by
    /// default; real child processes for the socket transports). Only the
    /// [`BackendKind::RemoteSharded`] engine has workers, so other kinds
    /// ignore this.
    pub(crate) transport: TransportKind,
    /// Noise model applied by the engine (ideal by default).
    pub(crate) noise: NoiseModel,
    /// How per-rank gate streams batch, optimize, and flush.
    pub(crate) batch: BatchPolicy,
}

impl QmpiConfig {
    /// The default configuration (state-vector backend, fixed seed, no
    /// buffer limit); identical to [`QmpiConfig::default`].
    pub fn new() -> Self {
        QmpiConfig::default()
    }

    /// Sets the measurement RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-rank EPR buffer limit (the SENDQ `S` parameter).
    pub fn s_limit(mut self, limit: u32) -> Self {
        self.s_limit = Some(limit);
        self
    }

    /// Removes the EPR buffer limit.
    pub fn unlimited_buffer(mut self) -> Self {
        self.s_limit = None;
        self
    }

    /// Selects the simulation backend for the world.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Selects the shard-worker transport for the world's backend: where
    /// the [`BackendKind::RemoteSharded`] engine's workers live and how
    /// they speak. [`TransportKind::InProcess`] (the default) runs them as
    /// threads over `cmpi` mailboxes; [`TransportKind::UnixSocket`] and
    /// [`TransportKind::Tcp`] spawn real `qworker` child processes behind
    /// framed sockets, with failover. Backends without shard workers
    /// ignore the setting.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Sets the noise model the world's engine applies — imperfect gates,
    /// measurements, and EPR pairs for fidelity-vs-`S`-budget studies:
    ///
    /// ```
    /// use qmpi::{run_with_config, BackendKind, NoiseChannel, NoiseModel, QmpiConfig};
    ///
    /// // 5% depolarizing on each half of every EPR pair; everything else
    /// // ideal. Clifford-compatible, so it runs on the stabilizer backend.
    /// let cfg = QmpiConfig::new()
    ///     .seed(7)
    ///     .backend(BackendKind::Stabilizer)
    ///     .noise(NoiseModel::epr_only(NoiseChannel::Depolarizing { p: 0.05 }));
    /// let out = run_with_config(2, cfg, |ctx| {
    ///     let q = ctx.alloc_one();
    ///     ctx.prepare_epr(&q, 1 - ctx.rank(), 0).unwrap();
    ///     ctx.measure_and_free(q).unwrap()
    /// });
    /// assert_eq!(out.len(), 2); // correlated except when the channel fired
    /// ```
    pub fn noise(mut self, model: NoiseModel) -> Self {
        self.noise = model;
        self
    }

    /// The configured noise model.
    pub fn noise_model(&self) -> NoiseModel {
        self.noise
    }

    /// The configured measurement RNG seed.
    pub fn rng_seed(&self) -> u64 {
        self.seed
    }

    /// The configured EPR buffer limit, if any.
    pub fn epr_buffer_limit(&self) -> Option<u32> {
        self.s_limit
    }

    /// The configured backend kind.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The configured shard-worker transport.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport
    }

    /// Builds the configured backend — kind, transport, seed, and noise in
    /// one construction point (see [`crate::backend::build_backend`]).
    /// This is what [`crate::run_with_config`] calls; it is public so
    /// schedulers that manage backends themselves (qserve) construct them
    /// identically.
    pub fn build_backend(&self) -> crate::error::Result<Arc<dyn QuantumBackend>> {
        crate::backend::build_backend_with_policy(
            self.backend,
            self.transport,
            self.seed,
            self.noise,
            self.batch,
        )
    }

    /// Sets the full batch policy for the world, overriding the
    /// environment defaults captured at [`QmpiConfig::new`]. With batching
    /// on (`max_ops > 0`), rank-local gate calls append to a per-rank
    /// [`qsim::GateBatch`] that flushes lazily — on measurement,
    /// probability/expectation reads, allocation, EPR establishment,
    /// barriers, backend access, budget exhaustion, or an explicit
    /// [`crate::QmpiRank::flush`] — so the backend takes its locality lock
    /// (and, on the process-separated engine, pays its command round) once
    /// per *batch* instead of once per gate. Flush points are placed so
    /// batched and eager runs are bit-identical per seed; with
    /// [`BatchPolicy::fuse`] on, each flushed batch is additionally
    /// rewritten into fewer kernel sweeps (matching to ~1e-12 rather than
    /// bitwise; see `docs/ARCHITECTURE.md`).
    pub fn batch(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// The configured batch policy.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch
    }

    /// Compat shim over [`QmpiConfig::batch`]: `true` maps to
    /// [`BatchPolicy::env_default`], `false` to [`BatchPolicy::eager`].
    pub fn batching(self, enabled: bool) -> Self {
        self.batch(if enabled {
            BatchPolicy::env_default()
        } else {
            BatchPolicy::eager()
        })
    }

    /// Whether gate batching is enabled for the world
    /// ([`BatchPolicy::is_batching`]).
    pub fn batching_enabled(&self) -> bool {
        self.batch.is_batching()
    }
}

/// The legacy `QMPI_BATCH` kill switch: batching is on unless the
/// variable reads `off`, `0`, or `false` (CI's eager cross-check lane).
fn batching_env_default() -> bool {
    match std::env::var("QMPI_BATCH") {
        Ok(v) => !matches!(v.to_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

impl Default for QmpiConfig {
    fn default() -> Self {
        QmpiConfig {
            seed: 0x514D5049, // "QMPI"
            s_limit: None,
            backend: BackendKind::default(),
            transport: TransportKind::default(),
            noise: NoiseModel::ideal(),
            batch: if batching_env_default() {
                BatchPolicy::env_default()
            } else {
                BatchPolicy::eager()
            },
        }
    }
}

/// Per-rank QMPI context: quantum allocation, gates, and communication.
pub struct QmpiRank {
    pub(crate) proto: Communicator,
    classical: Communicator,
    pub(crate) backend: Arc<dyn QuantumBackend>,
    pub(crate) ledger: Arc<ResourceLedger>,
    pub(crate) config: QmpiConfig,
    /// Sequence number for quantum collectives. Identical across ranks since
    /// collectives must be invoked in the same order everywhere; used to
    /// derive private tags in the reserved range `0x8000..`.
    pub(crate) qcoll_seq: std::cell::Cell<u16>,
    /// The rank's pending gate stream: gate calls append here when
    /// [`QmpiConfig::batching`] is on, and every state-observing or
    /// state-restructuring operation flushes it first (see
    /// [`QmpiRank::flush`]). A rank is single-threaded, so a `RefCell`
    /// suffices.
    pub(crate) pending: std::cell::RefCell<qsim::GateBatch>,
    /// Whether flushed batches run through the plan-time optimizer:
    /// [`BatchPolicy::fuse`] is on AND the world's backend is an
    /// amplitude-class engine under an ideal noise model (resolved once at
    /// world construction). Fusing would otherwise change the op stream
    /// that noise injection and Clifford classification key on.
    pub(crate) fuse: bool,
    /// A flush error raised at an infallible flush point (an accessor like
    /// [`QmpiRank::classical`] that cannot return `Result`). Parked here
    /// and surfaced — typed — by the next fallible QMPI call instead of
    /// panicking inside the accessor.
    deferred: std::cell::RefCell<Option<QmpiError>>,
}

impl QmpiRank {
    /// This rank's id (QMPI_Comm_rank on QMPI_COMM_WORLD).
    pub fn rank(&self) -> usize {
        self.proto.rank()
    }

    /// Number of quantum ranks (QMPI_Comm_size on QMPI_COMM_WORLD).
    pub fn size(&self) -> usize {
        self.proto.size()
    }

    /// The classical MPI communicator for user data (measurement results,
    /// parameters, ...). Fully separate from quantum communication, as the
    /// paper's Section 4.2 requires.
    ///
    /// A flush point: a classical message is the one way a rank can signal
    /// "my gates are done" to a peer, so any gates recorded before the
    /// signal must land before it can be sent — that keeps cross-rank
    /// orderings established by classical traffic identical between the
    /// batched and eager paths (and with them, the shared noise-stream
    /// draw order).
    ///
    /// The flush fires at *this accessor*, which covers the idiomatic
    /// `ctx.classical().send(..)` form. Storing the returned reference and
    /// interleaving gate calls before sending through it bypasses the
    /// flush (the communicator knows nothing about the backend) — call
    /// [`QmpiRank::flush`] yourself in that pattern, or re-fetch the
    /// communicator per operation.
    pub fn classical(&self) -> &Communicator {
        self.flush_or_defer();
        &self.classical
    }

    /// Applies the rank's pending gate stream as one batched backend call
    /// (one locality-lock acquisition; one framed command round per worker
    /// on the process-separated engine). No-op when nothing is pending or
    /// batching is off.
    ///
    /// Called automatically at every point where deferred gates could be
    /// observed: measurement, probability and expectation reads, qubit
    /// allocation and frees, EPR establishment, barriers, and
    /// [`QmpiRank::backend`] access. Call it explicitly to bound gate
    /// latency (e.g. before timing a communication round).
    ///
    /// A batch-wide ownership or validation failure surfaces here — as a
    /// typed [`QmpiError`] at the flush call site — rather than at the
    /// gate call that recorded the failing op (or as a panic deep in the
    /// locality wrapper); ops preceding the failing one are applied,
    /// exactly as if issued eagerly. An error deferred by an infallible
    /// flush point (see [`QmpiRank::classical`]) is surfaced first.
    pub fn flush(&self) -> Result<()> {
        if let Some(e) = self.deferred.borrow_mut().take() {
            return Err(e);
        }
        let batch = self.pending.borrow_mut().take();
        if batch.is_empty() {
            return Ok(());
        }
        let batch = if self.fuse {
            qsim::optimize(batch)
        } else {
            batch
        };
        self.backend.apply_batch(self.rank(), &batch)
    }

    /// Flush for the accessors that cannot return `Result`: a failure is
    /// parked in `deferred` (first error wins) and re-raised, typed, by
    /// the next fallible call instead of panicking here.
    ///
    /// Accessor flush points are also *synchronization* points for the
    /// cross-rank coalesce window: a classical send, a barrier, or a
    /// backend read is how this rank's gates become observable to others,
    /// so any segment parked in the backend's window must ship too. (The
    /// fallible flush points — measurement, allocation, EPR — go through
    /// backend methods that ship the window under their own lock.)
    fn flush_or_defer(&self) {
        let synced = self.flush().and_then(|()| self.backend.sync_coalesced());
        if let Err(e) = synced {
            self.deferred.borrow_mut().get_or_insert(e);
        }
    }

    /// Records one gate op (or dispatches it immediately with batching
    /// off). Errors that do not need engine state still surface *at the
    /// call site*, exactly like the eager path: structural faults
    /// (duplicate qubits) via [`qsim::BatchOp::validate`], and
    /// non-Clifford ops on the stabilizer backend by routing them eagerly.
    /// With qubit handles being linear (a freed [`Qubit`] cannot be
    /// named), that leaves no engine error a *recorded* op can raise at
    /// its flush point.
    pub(crate) fn enqueue(&self, op: qsim::BatchOp) -> Result<()> {
        op.validate().map_err(QmpiError::Sim)?;
        let policy = self.config.batch;
        if !policy.is_batching()
            || (self.backend.kind() == BackendKind::Stabilizer && !op.is_clifford())
        {
            // The eager path proper: flush anything recorded before the
            // mode switch, then dispatch this op through the per-gate
            // backend surface.
            self.flush()?;
            use qsim::BatchOp;
            return match op {
                BatchOp::Gate { gate, q } => self.backend.apply(self.rank(), gate, q),
                BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                } => self
                    .backend
                    .apply_controlled(self.rank(), &controls, gate, target),
                BatchOp::Cnot { c, t } => self.backend.cnot(self.rank(), c, t),
                BatchOp::Cz { a, b } => self.backend.cz(self.rank(), a, b),
                BatchOp::Swap { a, b } => self.backend.swap(self.rank(), a, b),
                // Only the optimizer emits these; user gate calls record
                // primitive ops. Kept total via a one-op batch.
                op @ (BatchOp::Fused1q { .. } | BatchOp::PhaseSweep { .. }) => {
                    let mut one = qsim::GateBatch::new();
                    one.push(op);
                    self.backend.apply_batch(self.rank(), &one)
                }
            };
        }
        // The op/byte budgets bound the memory a long measurement-free
        // gate storm can pin, without cutting fusion windows at an
        // arbitrary op count when the recorded ops are small.
        let (len, bytes) = {
            let mut pending = self.pending.borrow_mut();
            pending.push(op);
            (pending.len(), pending.approx_bytes())
        };
        if len >= policy.max_ops || bytes >= policy.max_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// The global resource ledger (EPR pairs, classical correction bits).
    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    /// Convenience: snapshot of the global resource totals.
    pub fn resources(&self) -> ResourceSnapshot {
        self.ledger.snapshot()
    }

    /// The shared backend (diagnostics: state snapshots, operation counts).
    ///
    /// Flushes this rank's pending gate batch first, so whatever the
    /// caller reads through the backend reflects every gate issued so far.
    /// A flush failure (impossible for well-formed programs; gate calls on
    /// linear [`Qubit`] handles only fail at engine level) is deferred to
    /// the next fallible call — see [`QmpiRank::flush`].
    pub fn backend(&self) -> &Arc<dyn QuantumBackend> {
        self.flush_or_defer();
        &self.backend
    }

    /// World configuration.
    pub fn config(&self) -> &QmpiConfig {
        &self.config
    }

    /// Allocates `n` fresh qubits in |0> (QMPI_Alloc_qmem). A flush point:
    /// the engine's amplitude layout changes here, and keeping the eager
    /// and batched paths' operation orders identical is what keeps them
    /// bit-identical per seed.
    pub fn alloc_qmem(&self, n: usize) -> Vec<Qubit> {
        self.flush_or_defer();
        self.backend
            .alloc(self.rank(), n)
            .into_iter()
            .map(Qubit::new)
            .collect()
    }

    /// Allocates a single fresh qubit in |0>.
    pub fn alloc_one(&self) -> Qubit {
        self.alloc_qmem(1).pop().expect("one qubit")
    }

    /// Frees a qubit already in a classical state (QMPI_Free_qmem),
    /// returning its value. A flush point.
    pub fn free_qmem(&self, q: Qubit) -> Result<bool> {
        self.flush()?;
        self.backend.free(self.rank(), q.id)
    }

    /// Measures a qubit and frees it. A flush point.
    pub fn measure_and_free(&self, q: Qubit) -> Result<bool> {
        self.flush()?;
        self.backend.measure_and_free(self.rank(), q.id)
    }

    /// Classical barrier over all ranks. A flush point: code sequenced
    /// after a barrier may observe global state (counts, snapshots), so
    /// every rank's pending gates must land before its barrier entry.
    pub fn barrier(&self) {
        self.flush_or_defer();
        self.proto.barrier();
    }

    /// Runs `f` between barrier fences and returns the global resource
    /// delta it caused plus its result. Collective: all ranks must call it
    /// (the fences guarantee no rank races ahead of another's snapshot).
    pub fn measure_resources<R>(&self, f: impl FnOnce() -> R) -> (ResourceSnapshot, R) {
        self.barrier();
        let before = self.resources();
        self.barrier();
        let r = f();
        self.barrier();
        (self.resources() - before, r)
    }

    /// Next private tag for a quantum collective. User point-to-point tags
    /// must stay below `0x8000`; the top half of the tag space is reserved
    /// for collectives.
    pub(crate) fn next_qcoll_tag(&self) -> QTag {
        let seq = self.qcoll_seq.get();
        self.qcoll_seq.set(seq.wrapping_add(1));
        0x8000 | (seq & 0x7FFF)
    }

    /// Checks the EPR buffer budget after an increment; callers roll the
    /// increment back on error.
    pub(crate) fn check_buffer(&self, new_level: i64) -> Result<()> {
        if let Some(limit) = self.config.s_limit {
            if new_level > limit as i64 {
                self.ledger.buffer_dec(self.rank());
                return Err(QmpiError::EprBufferExceeded {
                    rank: self.rank(),
                    limit,
                });
            }
        }
        Ok(())
    }
}

/// Runs `f` on `n` QMPI ranks with the default configuration; returns
/// per-rank results in rank order.
pub fn run<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
{
    run_with_config(n, QmpiConfig::default(), f)
}

/// Runs `f` on `n` QMPI ranks with an explicit configuration; the backend
/// selected by [`QmpiConfig::backend`] is constructed here and shared by
/// every rank.
///
/// # Panics
///
/// Panics when the configured [`QmpiConfig::noise`] model is invalid for
/// the configured backend (a rate outside `[0, 1]`, or amplitude damping on
/// the stabilizer backend) — see [`crate::backend::build_backend`].
pub fn run_with_config<T, F>(n: usize, config: QmpiConfig, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
{
    let backend = config
        .build_backend()
        .unwrap_or_else(|e| panic!("cannot build the {} backend: {e}", config.backend));
    run_on_backend(n, config, backend, f).results
}

/// Everything one world execution produced: the per-rank results plus the
/// final totals of the world's private [`ResourceLedger`] — the accounting
/// a job scheduler needs without sharing the ledger itself.
pub struct WorldRun<T> {
    /// Per-rank results in rank order.
    pub results: Vec<T>,
    /// Final ledger totals (EPR pairs, classical bits, EPR rounds).
    pub resources: ResourceSnapshot,
    /// Largest per-rank EPR-buffer peak — the minimum SENDQ `S` this
    /// execution actually required.
    pub max_buffer_peak: i64,
}

/// Runs `f` on `n` QMPI ranks over an *already constructed* backend —
/// the entry point for callers that manage backend lifecycle themselves,
/// such as the `qserve` job service multiplexing jobs over pooled shard
/// workers ([`crate::backend::ShardWorkerPool`]).
///
/// The world gets its own fresh [`ResourceLedger`]; its final totals come
/// back in the [`WorldRun`]. `config.backend` is informational here — the
/// provided `backend` executes the quantum operations regardless — but
/// `config.seed`, `config.s_limit`, and `config.batch` apply as in
/// [`run_with_config`].
pub fn run_on_backend<T, F>(
    n: usize,
    config: QmpiConfig,
    backend: Arc<dyn QuantumBackend>,
    f: F,
) -> WorldRun<T>
where
    T: Send + 'static,
    F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
{
    let ledger = Arc::new(ResourceLedger::new(n));
    let ledger_out = Arc::clone(&ledger);
    // Whether flushes run the plan-time optimizer: resolved once against
    // the *actual* backend (not the informational `config.backend`). Fusing
    // is sound only where amplitudes are the semantics — it rewrites the op
    // stream, which must not perturb per-op noise injection, trace-engine
    // accounting, or the stabilizer backend's Clifford classification.
    let fuse = config.batch.fuse
        && backend.noise().is_ideal()
        && matches!(
            backend.kind(),
            BackendKind::StateVector
                | BackendKind::Sparse
                | BackendKind::ShardedStateVector { .. }
                | BackendKind::RemoteSharded { .. }
        );
    let results = Universe::run(n, move |comm| {
        // The original world communicator carries the QMPI protocol; users
        // get a duplicate so their classical traffic can never collide.
        let classical = comm.dup();
        let ctx = QmpiRank {
            proto: comm,
            classical,
            backend: Arc::clone(&backend),
            ledger: Arc::clone(&ledger),
            config,
            qcoll_seq: std::cell::Cell::new(0),
            pending: std::cell::RefCell::new(qsim::GateBatch::new()),
            fuse,
            deferred: std::cell::RefCell::new(None),
        };
        let out = f(&ctx);
        // The rank's program is over: anything still pending must land so
        // post-run diagnostics (counts, snapshots) see the full program —
        // including any segment parked in the backend's coalesce window.
        ctx.flush()
            .and_then(|()| ctx.backend.sync_coalesced())
            .expect("flushing the rank's pending batched gates at world teardown");
        out
    });
    WorldRun {
        results,
        resources: ledger_out.snapshot(),
        max_buffer_peak: ledger_out.max_buffer_peak(),
    }
}

impl Drop for QmpiRank {
    fn drop(&mut self) {
        // Backstop for contexts dropped outside `run_with_config` (or after
        // a panic): never let recorded gates vanish silently, and never let
        // a deferred typed error disappear unreported. Errors can only be
        // reported, not propagated, from a destructor.
        if let Some(e) = self.deferred.get_mut().take() {
            eprintln!(
                "qmpi: rank {}: a deferred batch flush error was never surfaced: {e}",
                self.proto.rank()
            );
        }
        let batch = self.pending.borrow_mut().take();
        if batch.is_empty() {
            return;
        }
        let batch = if self.fuse {
            qsim::optimize(batch)
        } else {
            batch
        };
        let landed = self
            .backend
            .apply_batch(self.proto.rank(), &batch)
            .and_then(|()| self.backend.sync_coalesced());
        if let Err(e) = landed {
            eprintln!(
                "qmpi: rank {}: {} batched gate(s) failed during teardown flush: {e}",
                self.proto.rank(),
                batch.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_sizes_and_ranks() {
        let out = run(3, |ctx| (ctx.rank(), ctx.size()));
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn alloc_and_free_qmem() {
        let out = run(2, |ctx| {
            let qs = ctx.alloc_qmem(3);
            assert_eq!(qs.len(), 3);
            for q in qs {
                assert!(!ctx.free_qmem(q).unwrap());
            }
            ctx.rank()
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn classical_channel_works() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.classical().send(&7u32, 1, 0);
                0
            } else {
                ctx.classical().recv::<u32>(0, 0).0
            }
        });
        assert_eq!(out[1], 7);
    }

    #[test]
    fn config_carries_s_limit() {
        let cfg = QmpiConfig::new().seed(5).s_limit(2);
        let out = run_with_config(2, cfg, |ctx| ctx.config().epr_buffer_limit());
        assert_eq!(out, vec![Some(2), Some(2)]);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = QmpiConfig::new();
        assert_eq!(cfg.backend_kind(), crate::BackendKind::StateVector);
        assert_eq!(cfg.epr_buffer_limit(), None);
        let cfg = cfg.seed(9).s_limit(3).backend(crate::BackendKind::Trace);
        assert_eq!(cfg.rng_seed(), 9);
        assert_eq!(cfg.epr_buffer_limit(), Some(3));
        assert_eq!(cfg.backend_kind(), crate::BackendKind::Trace);
        assert_eq!(cfg.unlimited_buffer().epr_buffer_limit(), None);
    }

    /// The boolean `batching` entry points are thin shims over the policy
    /// API: `false` is exactly [`BatchPolicy::eager`], `true` exactly the
    /// environment-derived batching default. (Compared against the same
    /// constructors rather than literals so the assertions hold under
    /// CI's `QMPI_FUSE=off` / `QMPI_BATCH_OPS` lanes too.)
    #[test]
    fn batching_shim_is_equivalent_to_the_policy_api() {
        let off = QmpiConfig::new().batching(false);
        assert_eq!(off.batch_policy(), BatchPolicy::eager());
        assert!(!off.batching_enabled());
        let on = off.batching(true);
        assert_eq!(on.batch_policy(), BatchPolicy::env_default());
        assert!(on.batching_enabled());
        // An explicit policy wins over the environment default and round-
        // trips through the accessor.
        let custom = BatchPolicy {
            max_ops: 17,
            max_bytes: 1234,
            fuse: false,
            coalesce: false,
            max_age_ms: 5,
        };
        assert_eq!(QmpiConfig::new().batch(custom).batch_policy(), custom);
        assert!(BatchPolicy::default().is_batching());
        assert!(!BatchPolicy::eager().is_batching());
    }

    /// The op and byte budgets both force an auto-flush; gates land at the
    /// backend (observed through a pre-cloned handle, which does not
    /// flush) without any explicit flush point.
    #[test]
    fn batch_budgets_auto_flush() {
        for policy in [
            BatchPolicy {
                max_ops: 2,
                ..BatchPolicy::default()
            },
            BatchPolicy {
                max_bytes: 1,
                ..BatchPolicy::default()
            },
        ] {
            let out = run_with_config(1, QmpiConfig::new().batch(policy), move |ctx| {
                let q = ctx.alloc_one();
                let backend = Arc::clone(ctx.backend());
                ctx.t(&q).unwrap();
                ctx.t(&q).unwrap();
                let landed = backend.gate_count();
                ctx.measure_and_free(q).unwrap();
                landed
            });
            assert!(
                out[0] >= 1,
                "budget {policy:?} must have flushed mid-stream, saw {} gates",
                out[0]
            );
        }
        // Control: a roomy budget leaves the gates pending until a real
        // flush point.
        let out = run_with_config(1, QmpiConfig::new().batch(BatchPolicy::default()), |ctx| {
            let q = ctx.alloc_one();
            let backend = Arc::clone(ctx.backend());
            ctx.t(&q).unwrap();
            ctx.t(&q).unwrap();
            let landed = backend.gate_count();
            ctx.measure_and_free(q).unwrap();
            landed
        });
        assert_eq!(out[0], 0, "no budget hit, no flush point crossed");
    }

    /// A batch-wide locality failure surfaces as a typed error from
    /// `flush()` — including when the failing flush fired at an infallible
    /// accessor, which defers the error instead of panicking.
    #[test]
    fn flush_failures_surface_typed_not_as_panics() {
        let out = run_with_config(2, QmpiConfig::new().batching(true), |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.barrier(); // rank 1 forges its handle after this
                ctx.barrier(); // ...and is done misusing it after this
                ctx.measure_and_free(q).unwrap();
                true
            } else {
                ctx.barrier();
                // Forge rank 0's qubit (test-only: the public API's linear
                // handles cannot name a foreign qubit).
                let stolen = Qubit::new(qsim::QubitId(0));
                ctx.x(&stolen).unwrap(); // records fine; structurally valid
                let err = ctx.flush().unwrap_err();
                assert!(matches!(err, QmpiError::Locality { .. }), "{err}");
                // Same failure through an infallible flush point: the
                // accessor defers, the next fallible call surfaces it.
                ctx.x(&stolen).unwrap();
                let _ = ctx.backend(); // must not panic
                let err = ctx.flush().unwrap_err();
                assert!(matches!(err, QmpiError::Locality { .. }), "{err}");
                // The rank stays usable afterwards.
                let mine = ctx.alloc_one();
                ctx.x(&mine).unwrap();
                let outcome = ctx.measure_and_free(mine).unwrap();
                ctx.barrier();
                outcome
            }
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn world_runs_on_every_backend_kind() {
        for kind in [
            crate::BackendKind::StateVector,
            crate::BackendKind::Stabilizer,
            crate::BackendKind::Trace,
            crate::BackendKind::Sparse,
            crate::BackendKind::ShardedStateVector { shards: 4 },
            crate::BackendKind::RemoteSharded { shards: 2 },
        ] {
            let out = run_with_config(2, QmpiConfig::new().backend(kind), move |ctx| {
                assert_eq!(ctx.backend().kind(), kind);
                let q = ctx.alloc_one();
                ctx.x(&q).unwrap();
                ctx.measure_and_free(q).unwrap()
            });
            // The trace backend fixes every measurement to false; stateful
            // backends must observe the X flip.
            let expect = kind != crate::BackendKind::Trace;
            assert_eq!(out, vec![expect, expect], "{kind}");
        }
    }
}
