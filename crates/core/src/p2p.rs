//! Point-to-point quantum communication (Section 4.4, Table 2).
//!
//! Two modes, both built on EPR pairs:
//!
//! * **Entangled copy** (`send`/`recv`, Fig. 3a): the qubit's value is fanned
//!   out to the receiver; both nodes then hold entangled copies. Inverse:
//!   `unsend`/`unrecv` (Fig. 1b / 3b) — one X-basis measurement plus a single
//!   classical bit, **no EPR pair**.
//! * **Move** (`send_move`/`recv_move`, Appendix A.1): full quantum
//!   teleportation; the sender's qubit is consumed. Inverse: a move in the
//!   opposite direction.
//!
//! Resources per qubit (Table 1): copy 1 EPR + 1 bit [uncopy 0 EPR + 1 bit];
//! move 1 EPR + 2 bits [unmove 1 EPR + 2 bits].

use crate::context::{ptag, EprRole, ProtoOp, QTag, QmpiRank};
use crate::error::Result;
use crate::qubit::Qubit;

impl QmpiRank {
    // ------------------------------------------------------------------
    // Entangled copy (fanout)
    // ------------------------------------------------------------------

    /// QMPI_Send: fans `qubit`'s value out to rank `dest` (entangled copy).
    /// The local qubit remains; `dest` must call [`QmpiRank::recv`].
    pub fn send(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        let epr = self.alloc_one();
        self.prepare_epr_role(&epr, dest, tag, EprRole::Origin)?;
        // Parity measurement between the data qubit and the local EPR half.
        self.cnot(qubit, &epr)?;
        let m = self.measure_and_free(epr)?;
        self.ledger.buffer_dec(self.rank());
        self.proto.send(&m, dest, ptag(ProtoOp::CopyFix, tag));
        self.ledger.record_classical(1);
        Ok(())
    }

    /// QMPI_Recv: receives an entangled copy from rank `src`, returning the
    /// new local qubit holding the sender's value.
    pub fn recv(&self, src: usize, tag: QTag) -> Result<Qubit> {
        let q = self.alloc_one();
        self.prepare_epr_role(&q, src, tag, EprRole::Target)?;
        let (m, _) = self.proto.recv::<bool>(src, ptag(ProtoOp::CopyFix, tag));
        if m {
            self.x(&q)?;
        }
        // The EPR half is now a data qubit; release its buffer slot.
        self.ledger.buffer_dec(self.rank());
        Ok(q)
    }

    /// QMPI_Unsend: inverse of [`QmpiRank::send`], called by the original
    /// sender (which keeps its qubit). The peer calls [`QmpiRank::unrecv`].
    /// Costs no EPR pair — only one classical bit from the peer (Fig. 1b).
    pub fn unsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        let (m, _) = self.proto.recv::<bool>(dest, ptag(ProtoOp::UncopyFix, tag));
        if m {
            self.z(qubit)?;
        }
        Ok(())
    }

    /// QMPI_Unrecv: inverse of [`QmpiRank::recv`], called by the copy
    /// holder; consumes the copy via an X-basis measurement and sends the
    /// fixup bit back.
    pub fn unrecv(&self, qubit: Qubit, src: usize, tag: QTag) -> Result<()> {
        self.h(&qubit)?;
        let m = self.measure_and_free(qubit)?;
        self.proto.send(&m, src, ptag(ProtoOp::UncopyFix, tag));
        self.ledger.record_classical(1);
        Ok(())
    }

    /// Buffered-mode send (QMPI_Bsend). On this substrate all sends complete
    /// via the EPR rendezvous, so the buffered/synchronous/ready modes share
    /// one protocol; the aliases exist for API completeness (Table 2).
    pub fn bsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send(qubit, dest, tag)
    }

    /// Synchronous-mode send (QMPI_Ssend).
    pub fn ssend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send(qubit, dest, tag)
    }

    /// Ready-mode send (QMPI_Rsend).
    pub fn rsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send(qubit, dest, tag)
    }

    /// Inverse of [`QmpiRank::bsend`] (QMPI_Bunsend).
    pub fn bunsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.unsend(qubit, dest, tag)
    }

    /// Inverse of [`QmpiRank::ssend`] (QMPI_Sunsend).
    pub fn sunsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.unsend(qubit, dest, tag)
    }

    /// Inverse of [`QmpiRank::rsend`] (QMPI_Runsend).
    pub fn runsend(&self, qubit: &Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.unsend(qubit, dest, tag)
    }

    /// Matched receive (QMPI_Mrecv): identical delivery semantics to `recv`
    /// on this substrate (messages are pre-matched by the EPR rendezvous).
    pub fn mrecv(&self, src: usize, tag: QTag) -> Result<Qubit> {
        self.recv(src, tag)
    }

    /// Inverse of [`QmpiRank::mrecv`] (QMPI_Munrecv).
    pub fn munrecv(&self, qubit: Qubit, src: usize, tag: QTag) -> Result<()> {
        self.unrecv(qubit, src, tag)
    }

    /// QMPI_Sendrecv: sends a copy of `qubit` to `dest` while receiving a
    /// copy from `src`. Both EPR channels are posted before either is
    /// completed, so rings and crossing exchanges cannot deadlock (the
    /// guarantee MPI_Sendrecv exists to provide).
    pub fn sendrecv(&self, qubit: &Qubit, dest: usize, src: usize, tag: QTag) -> Result<Qubit> {
        let epr_s = self.alloc_one();
        let req_s = self.iprepare_epr_role(&epr_s, dest, tag, EprRole::Origin)?;
        let q_r = self.alloc_one();
        let req_r = self.iprepare_epr_role(&q_r, src, tag, EprRole::Target)?;
        // Complete the send side.
        req_s.wait(self)?;
        self.cnot(qubit, &epr_s)?;
        let m = self.measure_and_free(epr_s)?;
        self.ledger.buffer_dec(self.rank());
        self.proto.send(&m, dest, ptag(ProtoOp::CopyFix, tag));
        self.ledger.record_classical(1);
        // Complete the receive side.
        req_r.wait(self)?;
        let (m, _) = self.proto.recv::<bool>(src, ptag(ProtoOp::CopyFix, tag));
        if m {
            self.x(&q_r)?;
        }
        self.ledger.buffer_dec(self.rank());
        Ok(q_r)
    }

    /// QMPI_Unsendrecv: inverse of [`QmpiRank::sendrecv`].
    pub fn unsendrecv(
        &self,
        kept: &Qubit,
        received: Qubit,
        dest: usize,
        src: usize,
        tag: QTag,
    ) -> Result<()> {
        self.unrecv(received, src, tag)?;
        self.unsend(kept, dest, tag)
    }

    /// QMPI_Sendrecv_replace: exchanges qubits with move semantics (Table 2
    /// note (a)) — the own qubit is teleported out while another is
    /// teleported in. Both EPR channels are posted before either completes,
    /// so the symmetric exchange cannot deadlock.
    pub fn sendrecv_replace(
        &self,
        qubit: Qubit,
        dest: usize,
        src: usize,
        tag: QTag,
    ) -> Result<Qubit> {
        let epr_s = self.alloc_one();
        let req_s = self.iprepare_epr_role(&epr_s, dest, tag, EprRole::Origin)?;
        let q_r = self.alloc_one();
        let req_r = self.iprepare_epr_role(&q_r, src, tag, EprRole::Target)?;
        // Teleport our qubit out.
        req_s.wait(self)?;
        self.cnot(&qubit, &epr_s)?;
        let mut r = 0u8;
        if self.measure_and_free(epr_s)? {
            r |= 1;
        }
        self.ledger.buffer_dec(self.rank());
        self.h(&qubit)?;
        if self.measure_and_free(qubit)? {
            r |= 2;
        }
        self.proto.send(&r, dest, ptag(ProtoOp::MoveFix, tag));
        self.ledger.record_classical(2);
        // Receive the incoming teleport.
        req_r.wait(self)?;
        let (r, _) = self.proto.recv::<u8>(src, ptag(ProtoOp::MoveFix, tag));
        if r & 1 != 0 {
            self.x(&q_r)?;
        }
        if r & 2 != 0 {
            self.z(&q_r)?;
        }
        self.ledger.buffer_dec(self.rank());
        Ok(q_r)
    }

    /// QMPI_Unsendrecv_replace: inverse of [`QmpiRank::sendrecv_replace`] —
    /// simply the exchange in the opposite direction.
    pub fn unsendrecv_replace(
        &self,
        qubit: Qubit,
        dest: usize,
        src: usize,
        tag: QTag,
    ) -> Result<Qubit> {
        self.sendrecv_replace(qubit, dest, src, tag)
    }

    // ------------------------------------------------------------------
    // Move (teleportation)
    // ------------------------------------------------------------------

    /// QMPI_Send_move: teleports `qubit` to rank `dest`, consuming it
    /// (Appendix A.1). Costs 1 EPR pair and one 2-bit classical message.
    pub fn send_move(&self, qubit: Qubit, dest: usize, tag: QTag) -> Result<()> {
        let epr = self.alloc_one();
        self.prepare_epr_role(&epr, dest, tag, EprRole::Origin)?;
        self.cnot(&qubit, &epr)?;
        let mut r = 0u8;
        if self.measure_and_free(epr)? {
            r |= 1;
        }
        self.ledger.buffer_dec(self.rank());
        self.h(&qubit)?;
        if self.measure_and_free(qubit)? {
            r |= 2;
        }
        self.proto.send(&r, dest, ptag(ProtoOp::MoveFix, tag));
        self.ledger.record_classical(2);
        Ok(())
    }

    /// QMPI_Recv_move: receives a teleported qubit from rank `src`.
    pub fn recv_move(&self, src: usize, tag: QTag) -> Result<Qubit> {
        let q = self.alloc_one();
        self.prepare_epr_role(&q, src, tag, EprRole::Target)?;
        let (r, _) = self.proto.recv::<u8>(src, ptag(ProtoOp::MoveFix, tag));
        if r & 1 != 0 {
            self.x(&q)?;
        }
        if r & 2 != 0 {
            self.z(&q)?;
        }
        self.ledger.buffer_dec(self.rank());
        Ok(q)
    }

    /// QMPI_Unsend_move: inverse of a move — the qubit is teleported back;
    /// the original sender recovers it.
    pub fn unsend_move(&self, src_of_move: usize, tag: QTag) -> Result<Qubit> {
        self.recv_move(src_of_move, tag)
    }

    /// QMPI_Unrecv_move: inverse of a move from the receiver's side —
    /// teleports the qubit back to the original sender.
    pub fn unrecv_move(&self, qubit: Qubit, dest_of_move: usize, tag: QTag) -> Result<()> {
        self.send_move(qubit, dest_of_move, tag)
    }

    /// Buffered-mode move (QMPI_Bsend_move).
    pub fn bsend_move(&self, qubit: Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send_move(qubit, dest, tag)
    }

    /// Synchronous-mode move (QMPI_Ssend_move).
    pub fn ssend_move(&self, qubit: Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send_move(qubit, dest, tag)
    }

    /// Ready-mode move (QMPI_Rsend_move).
    pub fn rsend_move(&self, qubit: Qubit, dest: usize, tag: QTag) -> Result<()> {
        self.send_move(qubit, dest, tag)
    }

    /// Matched move receive (QMPI_Mrecv_move).
    pub fn mrecv_move(&self, src: usize, tag: QTag) -> Result<Qubit> {
        self.recv_move(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::context::run;
    use qsim::Pauli;

    const TOL: f64 = 1e-9;

    #[test]
    fn send_recv_creates_entangled_copy() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.ry(&q, 1.234).unwrap();
                ctx.send(&q, 1, 0).unwrap();
                ctx.barrier();
                // After the copy, <Z0 Z1> = 1 regardless of the state.
                let m = ctx.measure(&q).unwrap();
                ctx.classical().send(&m, 1, 9);
                ctx.measure_and_free(q).unwrap();
                true
            } else {
                let copy = ctx.recv(0, 0).unwrap();
                ctx.barrier();
                let m = ctx.measure(&copy).unwrap();
                let (m0, _) = ctx.classical().recv::<bool>(0, 9);
                ctx.measure_and_free(copy).unwrap();
                m == m0
            }
        });
        assert!(out[1], "copies must be perfectly correlated in Z");
    }

    #[test]
    fn send_costs_one_epr_one_bit() {
        let out = run(2, |ctx| {
            let (d, q) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.h(&q).unwrap();
                    ctx.send(&q, 1, 0).unwrap();
                    q
                } else {
                    ctx.recv(0, 0).unwrap()
                }
            });
            ctx.measure_and_free(q).unwrap();
            d
        });
        assert_eq!(out[0].epr_pairs, 1);
        assert_eq!(out[0].classical_bits, 1);
    }

    #[test]
    fn unsend_unrecv_restores_original_state() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.ry(&q, 0.77).unwrap();
                ctx.rz(&q, -0.4).unwrap();
                ctx.send(&q, 1, 0).unwrap();
                // ... peer does work on the copy's value ...
                ctx.unsend(&q, 1, 0).unwrap();
                // Verify we recovered the pure single-qubit state: since
                // the copy is uncomputed, <X>, <Y>, <Z> must match a fresh
                // preparation.
                let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                ctx.measure_and_free(q).unwrap();
                (z, x)
            } else {
                let copy = ctx.recv(0, 0).unwrap();
                ctx.unrecv(copy, 0, 0).unwrap();
                (0.0, 0.0)
            }
        });
        // Reference values for Rz(-0.4) Ry(0.77) |0>.
        let theta: f64 = 0.77;
        let phi: f64 = -0.4;
        let z_ref = theta.cos();
        let x_ref = theta.sin() * phi.cos();
        assert!((out[0].0 - z_ref).abs() < TOL);
        assert!((out[0].1 - x_ref).abs() < TOL);
    }

    #[test]
    fn uncopy_costs_zero_epr_one_bit() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.h(&q).unwrap();
                ctx.send(&q, 1, 0).unwrap();
                let (d, ()) = ctx.measure_resources(|| {
                    ctx.unsend(&q, 1, 0).unwrap();
                });
                ctx.measure_and_free(q).unwrap();
                d
            } else {
                let copy = ctx.recv(0, 0).unwrap();
                let (d, ()) = ctx.measure_resources(|| {
                    ctx.unrecv(copy, 0, 0).unwrap();
                });
                d
            }
        });
        assert_eq!(out[0].epr_pairs, 0, "uncopy must not consume EPR pairs");
        assert_eq!(out[0].classical_bits, 1);
    }

    #[test]
    fn move_teleports_state() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.ry(&q, 0.9).unwrap();
                ctx.rz(&q, 1.7).unwrap();
                ctx.send_move(q, 1, 0).unwrap();
                (0.0, 0.0)
            } else {
                let q = ctx.recv_move(0, 0).unwrap();
                let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                ctx.measure_and_free(q).unwrap();
                (z, x)
            }
        });
        let theta: f64 = 0.9;
        let phi: f64 = 1.7;
        assert!((out[1].0 - theta.cos()).abs() < TOL);
        assert!((out[1].1 - theta.sin() * phi.cos()).abs() < TOL);
    }

    #[test]
    fn move_costs_one_epr_two_bits() {
        let out = run(2, |ctx| {
            let (d, ()) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.send_move(q, 1, 0).unwrap();
                } else {
                    let q = ctx.recv_move(0, 0).unwrap();
                    ctx.measure_and_free(q).unwrap();
                }
            });
            d
        });
        assert_eq!(out[0].epr_pairs, 1);
        assert_eq!(out[0].classical_bits, 2);
        assert_eq!(
            out[0].classical_messages, 1,
            "one two-bit message, not two one-bit ones"
        );
    }

    #[test]
    fn unmove_returns_qubit() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.ry(&q, 2.2).unwrap();
                ctx.send_move(q, 1, 3).unwrap();
                let back = ctx.unsend_move(1, 3).unwrap();
                let z = ctx.expectation(&[(&back, Pauli::Z)]).unwrap();
                ctx.measure_and_free(back).unwrap();
                z
            } else {
                let q = ctx.recv_move(0, 3).unwrap();
                ctx.unrecv_move(q, 0, 3).unwrap();
                0.0
            }
        });
        assert!((out[0] - (2.2f64).cos()).abs() < TOL);
    }

    #[test]
    fn sendrecv_ring_exchange() {
        let out = run(3, |ctx| {
            let n = ctx.size();
            let q = ctx.alloc_one();
            if ctx.rank() == 1 {
                ctx.x(&q).unwrap();
            }
            let dest = (ctx.rank() + 1) % n;
            let src = (ctx.rank() + n - 1) % n;
            let incoming = ctx.sendrecv(&q, dest, src, 0).unwrap();
            let m = ctx.measure(&incoming).unwrap();
            // Uncompute the ring of copies so states stay clean.
            ctx.unsendrecv(&q, incoming, dest, src, 0).unwrap();
            ctx.measure_and_free(q).unwrap();
            m
        });
        // Rank 2 received rank 1's |1>.
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn sendrecv_replace_swaps_states() {
        let out = run(2, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() == 0 {
                ctx.x(&q).unwrap();
            }
            let peer = 1 - ctx.rank();
            let swapped = ctx.sendrecv_replace(q, peer, peer, 0).unwrap();
            let m = ctx.measure(&swapped).unwrap();
            ctx.measure_and_free(swapped).unwrap();
            m
        });
        assert_eq!(out, vec![false, true], "rank 1 now holds the |1>");
    }

    #[test]
    fn entangled_copy_enables_remote_controlled_gate() {
        // The Fig. 2 motivation: fan a control out, apply controlled gates
        // on two nodes in parallel, unfanout.
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let ctrl = ctx.alloc_one();
                ctx.h(&ctrl).unwrap();
                let t0 = ctx.alloc_one();
                ctx.send(&ctrl, 1, 0).unwrap();
                ctx.controlled(&[&ctrl], qsim::Gate::X, &t0).unwrap();
                ctx.unsend(&ctrl, 1, 0).unwrap();
                ctx.barrier();
                // <Z ctrl Z t0> = 1: perfectly correlated.
                let zz = ctx
                    .expectation(&[(&ctrl, qsim::Pauli::Z), (&t0, qsim::Pauli::Z)])
                    .unwrap();
                ctx.measure_and_free(t0).unwrap();
                ctx.measure_and_free(ctrl).unwrap();
                zz
            } else {
                let ctrl_copy = ctx.recv(0, 0).unwrap();
                let t1 = ctx.alloc_one();
                ctx.controlled(&[&ctrl_copy], qsim::Gate::X, &t1).unwrap();
                // Must undo the controlled op before unrecv? No: the copy
                // carries the control *value*; uncopying it is valid while
                // t1 stays correlated with the original control.
                ctx.unrecv(ctrl_copy, 0, 0).unwrap();
                ctx.barrier();
                ctx.measure_and_free(t1).unwrap();
                0.0
            }
        });
        assert!((out[0] - 1.0).abs() < TOL);
    }
}
