//! Error types for QMPI operations.

use qsim::{QubitId, SimError};

/// Errors surfaced by QMPI calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QmpiError {
    /// A gate touched a qubit owned by another rank. Distributed hardware
    /// cannot apply multi-qubit gates across nodes without communication;
    /// QMPI enforces this at the API layer (DESIGN.md substitution #2).
    Locality {
        /// The offending qubit.
        qubit: QubitId,
        /// The rank that owns it.
        owner: usize,
        /// The rank that attempted to act on it.
        acting: usize,
    },
    /// The per-node EPR buffer limit (SENDQ parameter `S`) was exceeded.
    EprBufferExceeded {
        /// The rank whose buffer overflowed.
        rank: usize,
        /// The configured limit.
        limit: u32,
    },
    /// EPR preparation was attempted on a qubit that is not in |0>.
    EprQubitNotFresh(QubitId),
    /// An underlying simulator error (unknown qubit, double-free, ...).
    Sim(SimError),
    /// Invalid argument (counts mismatch, root out of range, ...).
    InvalidArgument(String),
    /// A protocol invariant was violated (mismatched send/recv pairing).
    Protocol(String),
}

impl From<SimError> for QmpiError {
    fn from(e: SimError) -> Self {
        QmpiError::Sim(e)
    }
}

impl std::fmt::Display for QmpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QmpiError::Locality { qubit, owner, acting } => write!(
                f,
                "locality violation: qubit {qubit:?} is owned by rank {owner}, but rank {acting} applied a gate; use QMPI communication instead"
            ),
            QmpiError::EprBufferExceeded { rank, limit } => {
                write!(f, "rank {rank} exceeded its EPR buffer limit S = {limit}")
            }
            QmpiError::EprQubitNotFresh(q) => {
                write!(f, "QMPI_Prepare_EPR requires a fresh |0> qubit; {q:?} is not")
            }
            QmpiError::Sim(e) => write!(f, "simulator error: {e}"),
            QmpiError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            QmpiError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for QmpiError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, QmpiError>;
