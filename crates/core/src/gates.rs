//! Rank-local quantum gates.
//!
//! These are the local operations a node of the distributed machine can
//! perform on its own qubits; anything touching another rank's qubits fails
//! with [`crate::QmpiError::Locality`] and must be expressed via QMPI
//! communication instead.

use crate::context::QmpiRank;
use crate::error::Result;
use crate::qubit::Qubit;
use qsim::{BatchOp, Gate, Pauli};

impl QmpiRank {
    /// Applies an arbitrary single-qubit gate.
    ///
    /// With batching enabled (the default — see [`crate::BatchPolicy`])
    /// this *records* the gate into the rank's pending [`qsim::GateBatch`];
    /// the stream lands at the next flush point (measurement, probability or
    /// expectation read, allocation, EPR establishment, barrier, backend
    /// access, a tripped op/byte budget, or an explicit [`QmpiRank::flush`])
    /// as one backend call, optimized at plan time when
    /// [`crate::BatchPolicy::fuse`] is on.
    /// Engine-level errors from a recorded gate therefore surface at the
    /// flush point. All other gate entry points below share this behavior.
    pub fn apply(&self, gate: Gate, q: &Qubit) -> Result<()> {
        self.enqueue(BatchOp::Gate { gate, q: q.id })
    }

    /// Hadamard.
    pub fn h(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::H, q)
    }

    /// Pauli X.
    pub fn x(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::X, q)
    }

    /// Pauli Y.
    pub fn y(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::Y, q)
    }

    /// Pauli Z.
    pub fn z(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::Z, q)
    }

    /// Phase gate S.
    pub fn s(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::S, q)
    }

    /// Inverse phase gate S†.
    pub fn sdg(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::Sdg, q)
    }

    /// T gate (the expensive magic-state gate of Section 3).
    pub fn t(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::T, q)
    }

    /// T† gate.
    pub fn tdg(&self, q: &Qubit) -> Result<()> {
        self.apply(Gate::Tdg, q)
    }

    /// X rotation `exp(-i theta X / 2)`.
    pub fn rx(&self, q: &Qubit, theta: f64) -> Result<()> {
        self.apply(Gate::Rx(theta), q)
    }

    /// Y rotation `exp(-i theta Y / 2)`.
    pub fn ry(&self, q: &Qubit, theta: f64) -> Result<()> {
        self.apply(Gate::Ry(theta), q)
    }

    /// Z rotation `exp(-i theta Z / 2)` — the rotation gate whose delay
    /// `D_R` dominates the SENDQ analyses of Section 7.
    pub fn rz(&self, q: &Qubit, theta: f64) -> Result<()> {
        self.apply(Gate::Rz(theta), q)
    }

    /// Phase rotation diag(1, e^{i theta}).
    pub fn phase(&self, q: &Qubit, theta: f64) -> Result<()> {
        self.apply(Gate::Phase(theta), q)
    }

    /// Local CNOT (both qubits on this rank).
    pub fn cnot(&self, control: &Qubit, target: &Qubit) -> Result<()> {
        self.enqueue(BatchOp::Cnot {
            c: control.id,
            t: target.id,
        })
    }

    /// Local CZ.
    pub fn cz(&self, a: &Qubit, b: &Qubit) -> Result<()> {
        self.enqueue(BatchOp::Cz { a: a.id, b: b.id })
    }

    /// Local SWAP.
    pub fn swap(&self, a: &Qubit, b: &Qubit) -> Result<()> {
        self.enqueue(BatchOp::Swap { a: a.id, b: b.id })
    }

    /// Local Toffoli.
    pub fn toffoli(&self, c1: &Qubit, c2: &Qubit, target: &Qubit) -> Result<()> {
        self.enqueue(BatchOp::Controlled {
            controls: vec![c1.id, c2.id],
            gate: Gate::X,
            target: target.id,
        })
    }

    /// Local multi-controlled single-qubit gate.
    pub fn controlled(&self, controls: &[&Qubit], gate: Gate, target: &Qubit) -> Result<()> {
        let ids: Vec<_> = controls.iter().map(|q| q.id).collect();
        self.enqueue(BatchOp::Controlled {
            controls: ids,
            gate,
            target: target.id,
        })
    }

    /// Projective measurement; the qubit stays allocated. A flush point.
    pub fn measure(&self, q: &Qubit) -> Result<bool> {
        self.flush()?;
        self.backend.measure(self.rank(), q.id)
    }

    /// Probability of measuring |1> (non-destructive diagnostic). A flush
    /// point.
    pub fn prob_one(&self, q: &Qubit) -> Result<f64> {
        self.flush()?;
        self.backend.prob_one(self.rank(), q.id)
    }

    /// Local fanout (Fig. 2): allocates an auxiliary qubit and CNOTs `q`
    /// into it, producing an entangled local copy.
    pub fn fanout_local(&self, q: &Qubit) -> Result<Qubit> {
        let aux = self.alloc_one();
        self.cnot(q, &aux)?;
        Ok(aux)
    }

    /// Undoes a local fanout produced by [`QmpiRank::fanout_local`].
    pub fn unfanout_local(&self, q: &Qubit, aux: Qubit) -> Result<()> {
        self.cnot(q, &aux)?;
        self.free_qmem(aux)?;
        Ok(())
    }

    /// Local in-place joint Z-parity measurement over this rank's qubits
    /// (used by the cat-state protocol of Fig. 4). A flush point.
    pub fn measure_z_parity(&self, qubits: &[&Qubit]) -> Result<bool> {
        self.flush()?;
        let ids: Vec<_> = qubits.iter().map(|q| q.id).collect();
        self.backend.measure_z_parity(self.rank(), &ids)
    }

    /// Expectation value of a local Pauli string (diagnostic). Every qubit
    /// must be owned by this rank — reading another rank's observable
    /// without communication would break the distributed-machine model. A
    /// flush point.
    pub fn expectation(&self, terms: &[(&Qubit, Pauli)]) -> Result<f64> {
        self.flush()?;
        let mapped: Vec<_> = terms.iter().map(|&(q, p)| (q.id, p)).collect();
        self.backend.expectation(self.rank(), &mapped)
    }

    /// Expectation values of several local Pauli strings — one observable
    /// made of many terms — in a *single* backend acquisition.
    ///
    /// Evaluating an observable term by term through
    /// [`QmpiRank::expectation`] takes the global backend lock once per
    /// Pauli string; with 64 ranks doing the same the lock thrashes. This
    /// hoists the acquisition to once per observable.
    pub fn expectation_each(&self, strings: &[Vec<(&Qubit, Pauli)>]) -> Result<Vec<f64>> {
        self.flush()?;
        let mapped: Vec<Vec<(qsim::QubitId, Pauli)>> = strings
            .iter()
            .map(|terms| terms.iter().map(|&(q, p)| (q.id, p)).collect())
            .collect();
        self.backend.expectation_each(self.rank(), &mapped)
    }
}

#[cfg(test)]
mod tests {
    use crate::context::run;

    #[test]
    fn local_gates_and_measurement() {
        let out = run(1, |ctx| {
            let q = ctx.alloc_one();
            ctx.x(&q).unwrap();
            let m = ctx.measure(&q).unwrap();
            ctx.free_qmem(q).unwrap();
            m
        });
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn cross_rank_gate_rejected() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                // Tell rank 1 the raw id so it can try to touch it.
                ctx.classical().send(&q.id().0, 1, 0);
                let _ = ctx.classical().recv::<bool>(1, 1);
                ctx.free_qmem(q).unwrap();
                true
            } else {
                let (_id, _) = ctx.classical().recv::<u64>(0, 0);
                // Rank 1 cannot even name rank 0's qubit through the typed
                // API (handles are linear and unforgeable), which is the
                // point: locality is structurally enforced.
                ctx.classical().send(&true, 0, 1);
                true
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn fanout_unfanout_roundtrip() {
        let out = run(1, |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, 0.9).unwrap();
            let aux = ctx.fanout_local(&q).unwrap();
            // Correlated: parity even.
            let even = !ctx.measure_z_parity(&[&q, &aux]).unwrap();
            ctx.unfanout_local(&q, aux).unwrap();
            let p = ctx.prob_one(&q).unwrap();
            ctx.measure_and_free(q).unwrap();
            (even, p)
        });
        assert!(out[0].0);
        assert!((out[0].1 - (0.45f64).sin().powi(2)).abs() < 1e-9);
    }

    #[test]
    fn expectation_each_matches_per_term_calls() {
        let out = run(1, |ctx| {
            let a = ctx.alloc_one();
            let b = ctx.alloc_one();
            ctx.h(&a).unwrap();
            ctx.cnot(&a, &b).unwrap();
            let strings = vec![
                vec![(&a, qsim::Pauli::Z), (&b, qsim::Pauli::Z)],
                vec![(&a, qsim::Pauli::X), (&b, qsim::Pauli::X)],
                vec![(&a, qsim::Pauli::Z)],
            ];
            let batched = ctx.expectation_each(&strings).unwrap();
            let single: Vec<f64> = strings
                .iter()
                .map(|s| ctx.expectation(s).unwrap())
                .collect();
            ctx.measure_and_free(a).unwrap();
            ctx.measure_and_free(b).unwrap();
            (batched, single)
        });
        let (batched, single) = &out[0];
        assert_eq!(batched, single);
        assert!((batched[0] - 1.0).abs() < 1e-9);
        assert!((batched[1] - 1.0).abs() < 1e-9);
        assert!(batched[2].abs() < 1e-9);
    }

    #[test]
    fn toffoli_through_context() {
        let out = run(1, |ctx| {
            let a = ctx.alloc_one();
            let b = ctx.alloc_one();
            let t = ctx.alloc_one();
            ctx.x(&a).unwrap();
            ctx.x(&b).unwrap();
            ctx.toffoli(&a, &b, &t).unwrap();
            let m = ctx.measure(&t).unwrap();
            for q in [a, b, t] {
                ctx.measure_and_free(q).unwrap();
            }
            m
        });
        assert_eq!(out, vec![true]);
    }
}
