//! Quantum collective operations (Section 4.5, Table 3) and their inverses.
//!
//! Every collective is expressed in terms of the four basic primitives of
//! Table 1 — entangled copy, move, reduce, scan — and inherits their
//! resource costs:
//!
//! | primitive | EPR pairs | classical bits | inverse EPR | inverse bits |
//! |-----------|-----------|----------------|-------------|--------------|
//! | copy      | 1         | 1              | 0           | 1            |
//! | move      | 1         | 2              | 1           | 2            |
//! | reduce    | N−1       | N−1            | 0           | N−1          |
//! | scan      | N−1       | N−1            | 0           | N−1          |
//!
//! Reductions use the linear communication schedule of Section 4.6 (one
//! output register per node, N−1 EPR pairs, classical-only uncomputation);
//! broadcast offers both the binomial-tree algorithm (`E⌈log₂N⌉` quantum
//! time, S=1) and the constant-depth cat-state algorithm of Section 7.1
//! (`2E + D_M + D_F`, S≥2).

use crate::context::{QTag, QmpiRank};
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;
use crate::reduce_ops::QuantumReduceOp;

/// Which broadcast algorithm to use (Section 7.1 trade-off).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BcastAlgorithm {
    /// Binomial tree of `QMPI_Send`/`Recv`: runtime `E⌈log₂N⌉`, needs S=1.
    #[default]
    BinomialTree,
    /// Cat-state fanout (Fig. 4): runtime `2E + D_M + D_F`, needs S≥2.
    CatState,
}

/// Handle carrying the scratch state of a chain reduction, needed by
/// `QMPI_Unreduce` ("these must be stored and managed by the implementation
/// until the inverse of the reduction is applied", Section 3).
#[derive(Debug)]
#[must_use = "an un-reduced handle leaks scratch qubits; call unreduce"]
pub struct ReduceHandle {
    tag: QTag,
    root: usize,
    /// Partial-result qubit held by chain-intermediate ranks.
    scratch: Option<Qubit>,
}

/// Handle for `QMPI_Unscan`.
#[derive(Debug)]
#[must_use = "an un-scanned handle leaks scratch qubits; call unscan"]
pub struct ScanHandle {
    tag: QTag,
}

/// Handle for `QMPI_Unexscan`.
#[derive(Debug)]
#[must_use = "call unexscan to release scratch qubits"]
pub struct ExscanHandle {
    tag: QTag,
    /// Forwarding qubit holding the inclusive prefix (ranks 0..n-1 except the last).
    scratch: Option<Qubit>,
}

/// Handle for `QMPI_Unallreduce`.
#[derive(Debug)]
#[must_use = "call unallreduce to release scratch qubits"]
pub struct AllreduceHandle {
    reduce: ReduceHandle,
    bcast_tag: QTag,
}

/// Handle for `QMPI_Unreduce_scatter_block`.
#[derive(Debug)]
#[must_use = "call unreduce_scatter_block to release scratch qubits"]
pub struct ReduceScatterHandle {
    handles: Vec<ReduceHandle>,
}

impl QmpiRank {
    // ==================================================================
    // Broadcast
    // ==================================================================

    /// QMPI_Bcast with the default (binomial tree) algorithm: fans the
    /// root's qubit value out to every rank. The root passes `Some(&qubit)`
    /// and receives `None`; every other rank receives `Some(copy)`.
    pub fn bcast(&self, qubit: Option<&Qubit>, root: usize) -> Result<Option<Qubit>> {
        self.bcast_with(BcastAlgorithm::BinomialTree, qubit, root)
    }

    /// QMPI_Bcast with an explicit algorithm choice.
    pub fn bcast_with(
        &self,
        algo: BcastAlgorithm,
        qubit: Option<&Qubit>,
        root: usize,
    ) -> Result<Option<Qubit>> {
        let n = self.size();
        if root >= n {
            return Err(QmpiError::InvalidArgument(format!(
                "bcast root {root} out of range"
            )));
        }
        if self.rank() == root && qubit.is_none() {
            return Err(QmpiError::InvalidArgument(
                "bcast root must supply the qubit".into(),
            ));
        }
        let tag = self.next_qcoll_tag();
        if n == 1 {
            return Ok(None);
        }
        match algo {
            BcastAlgorithm::BinomialTree => self.bcast_tree(qubit, root, tag),
            BcastAlgorithm::CatState => self.bcast_cat(qubit, root, tag),
        }
    }

    fn bcast_tree(&self, qubit: Option<&Qubit>, root: usize, tag: QTag) -> Result<Option<Qubit>> {
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        if vrank == 0 {
            // ⌈log₂ n⌉ sequential EPR rounds (each node in ≤1 establishment
            // per round).
            let mut rounds = 0usize;
            let mut s = 1usize;
            while s < n {
                rounds += 1;
                s *= 2;
            }
            for _ in 0..rounds {
                self.ledger().record_epr_round();
            }
        }
        let mut copy: Option<Qubit> = None;
        let mut step = 1usize;
        while step < n {
            if vrank < step {
                let dst_v = vrank + step;
                if dst_v < n {
                    let dst = (dst_v + root) % n;
                    let payload = if vrank == 0 {
                        qubit.expect("root qubit checked above")
                    } else {
                        copy.as_ref().expect("copy received in an earlier round")
                    };
                    self.send(payload, dst, tag)?;
                }
            } else if vrank < 2 * step && copy.is_none() {
                let src = ((vrank - step) + root) % n;
                copy = Some(self.recv(src, tag)?);
            }
            step *= 2;
        }
        if vrank == 0 {
            Ok(None)
        } else {
            Ok(Some(copy.expect("non-root rank received its copy")))
        }
    }

    fn bcast_cat(&self, qubit: Option<&Qubit>, root: usize, tag: QTag) -> Result<Option<Qubit>> {
        let share = self.cat_establish_tagged(tag)?;
        if self.rank() == root {
            let data = qubit.expect("root qubit checked above");
            self.cnot(data, &share)?;
            let m = self.measure_and_free(share)?;
            // The outcome bit is broadcast to every other node regardless
            // of its value: N-1 protocol bits.
            self.ledger.record_classical(self.size() as u64 - 1);
            self.proto.bcast(Some(m), root);
            Ok(None)
        } else {
            let m: bool = self.proto.bcast(None, root);
            if m {
                self.x(&share)?;
            }
            Ok(Some(share))
        }
    }

    /// QMPI_Unbcast: uncomputes the entangled copies produced by
    /// [`QmpiRank::bcast`] (either algorithm). The root passes its original
    /// qubit; every other rank passes its copy. Costs no EPR pairs — one
    /// classical bit per copy (Fig. 1b), XOR-reduced to the root.
    pub fn unbcast(
        &self,
        original: Option<&Qubit>,
        copy: Option<Qubit>,
        root: usize,
    ) -> Result<()> {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let my_bit = if self.rank() == root {
            if copy.is_some() {
                return Err(QmpiError::InvalidArgument(
                    "root passes no copy to unbcast".into(),
                ));
            }
            false
        } else {
            let q = copy.ok_or_else(|| {
                QmpiError::InvalidArgument("non-root rank must pass its copy to unbcast".into())
            })?;
            self.h(&q)?;
            let m = self.measure_and_free(q)?;
            // The outcome crosses the network whatever its value.
            self.ledger.record_classical(1);
            m
        };
        let parity = self.proto.reduce(my_bit as u8, &cmpi::ops::bxor, root);
        if self.rank() == root && parity.expect("root obtains the reduction") & 1 != 0 {
            let orig = original.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass its original qubit".into())
            })?;
            self.z(orig)?;
        }
        Ok(())
    }

    // ==================================================================
    // Gather / Scatter (entangled-copy and move semantics)
    // ==================================================================

    /// QMPI_Gather: the root collects entangled copies of every rank's
    /// qubit, in rank order (the root's own slot is a local fanout).
    pub fn gather(&self, qubit: &Qubit, root: usize) -> Result<Option<Vec<Qubit>>> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(self.fanout_local(qubit)?);
                } else {
                    out.push(self.recv(r, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(qubit, root, tag)?;
            Ok(None)
        }
    }

    /// QMPI_Ungather: inverse of [`QmpiRank::gather`].
    pub fn ungather(&self, qubit: &Qubit, copies: Option<Vec<Qubit>>, root: usize) -> Result<()> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let copies = copies.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass the gathered copies".into())
            })?;
            if copies.len() != self.size() {
                return Err(QmpiError::InvalidArgument(
                    "gathered copy count mismatch".into(),
                ));
            }
            for (r, c) in copies.into_iter().enumerate() {
                if r == root {
                    self.unfanout_local(qubit, c)?;
                } else {
                    self.unrecv(c, r, tag)?;
                }
            }
            Ok(())
        } else {
            self.unsend(qubit, root, tag)
        }
    }

    /// QMPI_Gather_move: the root collects the actual qubits
    /// (teleportation); senders lose theirs.
    pub fn gather_move(&self, qubit: Qubit, root: usize) -> Result<Option<Vec<Qubit>>> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    // Moving to oneself is the identity.
                    out.push(Qubit::new(qubit.id()));
                } else {
                    out.push(self.recv_move(r, tag)?);
                }
            }
            // Ownership transferred into `out[root]`; the original handle
            // has no drop glue, so discarding it is a no-op.
            let _ = qubit;
            Ok(Some(out))
        } else {
            self.send_move(qubit, root, tag)?;
            Ok(None)
        }
    }

    /// QMPI_Ungather_move: returns gathered qubits to their origin ranks.
    pub fn ungather_move(&self, qubits: Option<Vec<Qubit>>, root: usize) -> Result<Qubit> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let qubits = qubits.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass the gathered qubits".into())
            })?;
            if qubits.len() != self.size() {
                return Err(QmpiError::InvalidArgument(
                    "gathered qubit count mismatch".into(),
                ));
            }
            let mut own = None;
            for (r, q) in qubits.into_iter().enumerate() {
                if r == root {
                    own = Some(q);
                } else {
                    self.send_move(q, r, tag)?;
                }
            }
            Ok(own.expect("root slot"))
        } else {
            self.recv_move(root, tag)
        }
    }

    /// QMPI_Scatter: the root fans out one qubit per rank (entangled
    /// copies); the originals stay on the root.
    pub fn scatter(&self, qubits: Option<&[Qubit]>, root: usize) -> Result<Qubit> {
        let tag = self.next_qcoll_tag();
        self.scatter_tagged(qubits, root, tag)
    }

    fn scatter_tagged(&self, qubits: Option<&[Qubit]>, root: usize, tag: QTag) -> Result<Qubit> {
        if self.rank() == root {
            let qs = qubits.ok_or_else(|| {
                QmpiError::InvalidArgument("scatter root must supply the qubits".into())
            })?;
            if qs.len() != self.size() {
                return Err(QmpiError::InvalidArgument(format!(
                    "scatter needs one qubit per rank ({} != {})",
                    qs.len(),
                    self.size()
                )));
            }
            for (r, q) in qs.iter().enumerate() {
                if r != root {
                    self.send(q, r, tag)?;
                }
            }
            self.fanout_local(&qs[root])
        } else {
            self.recv(root, tag)
        }
    }

    /// QMPI_Unscatter: inverse of [`QmpiRank::scatter`].
    pub fn unscatter(&self, qubits: Option<&[Qubit]>, piece: Qubit, root: usize) -> Result<()> {
        let tag = self.next_qcoll_tag();
        self.unscatter_tagged(qubits, piece, root, tag)
    }

    fn unscatter_tagged(
        &self,
        qubits: Option<&[Qubit]>,
        piece: Qubit,
        root: usize,
        tag: QTag,
    ) -> Result<()> {
        if self.rank() == root {
            let qs = qubits.ok_or_else(|| {
                QmpiError::InvalidArgument("unscatter root must supply the qubits".into())
            })?;
            for (r, q) in qs.iter().enumerate() {
                if r != root {
                    self.unsend(q, r, tag)?;
                }
            }
            self.unfanout_local(&qs[root], piece)
        } else {
            self.unrecv(piece, root, tag)
        }
    }

    /// QMPI_Scatter_move: the root teleports one qubit to each rank,
    /// losing the originals.
    pub fn scatter_move(&self, qubits: Option<Vec<Qubit>>, root: usize) -> Result<Qubit> {
        let tag = self.next_qcoll_tag();
        self.scatter_move_tagged(qubits, root, tag)
    }

    fn scatter_move_tagged(
        &self,
        qubits: Option<Vec<Qubit>>,
        root: usize,
        tag: QTag,
    ) -> Result<Qubit> {
        if self.rank() == root {
            let qs = qubits.ok_or_else(|| {
                QmpiError::InvalidArgument("scatter_move root must supply the qubits".into())
            })?;
            if qs.len() != self.size() {
                return Err(QmpiError::InvalidArgument(
                    "scatter_move count mismatch".into(),
                ));
            }
            let mut own = None;
            for (r, q) in qs.into_iter().enumerate() {
                if r == root {
                    own = Some(q);
                } else {
                    self.send_move(q, r, tag)?;
                }
            }
            Ok(own.expect("root slot"))
        } else {
            self.recv_move(root, tag)
        }
    }

    /// QMPI_Unscatter_move: gathers the scattered qubits back to the root.
    pub fn unscatter_move(&self, piece: Qubit, root: usize) -> Result<Option<Vec<Qubit>>> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(Qubit::new(piece.id()));
                } else {
                    out.push(self.recv_move(r, tag)?);
                }
            }
            // Ownership transferred into `out[root]` (no drop glue).
            let _ = piece;
            Ok(Some(out))
        } else {
            self.send_move(piece, root, tag)?;
            Ok(None)
        }
    }

    // ==================================================================
    // Allgather / Alltoall
    // ==================================================================

    /// QMPI_Allgather: every rank ends with entangled copies of every
    /// rank's qubit (its own slot is a local fanout). Implemented as N
    /// broadcasts.
    pub fn allgather(&self, qubit: &Qubit) -> Result<Vec<Qubit>> {
        let n = self.size();
        let mut out = Vec::with_capacity(n);
        for root in 0..n {
            if self.rank() == root {
                self.bcast(Some(qubit), root)?;
                out.push(self.fanout_local(qubit)?);
            } else {
                out.push(self.bcast(None, root)?.expect("non-root copy"));
            }
        }
        Ok(out)
    }

    /// QMPI_Unallgather: inverse of [`QmpiRank::allgather`].
    pub fn unallgather(&self, qubit: &Qubit, copies: Vec<Qubit>) -> Result<()> {
        let n = self.size();
        if copies.len() != n {
            return Err(QmpiError::InvalidArgument(
                "unallgather copy count mismatch".into(),
            ));
        }
        let mut copies: Vec<Option<Qubit>> = copies.into_iter().map(Some).collect();
        for root in (0..n).rev() {
            let c = copies[root].take().expect("copy present");
            if self.rank() == root {
                self.unfanout_local(qubit, c)?;
                self.unbcast(Some(qubit), None, root)?;
            } else {
                self.unbcast(None, Some(c), root)?;
            }
        }
        Ok(())
    }

    /// QMPI_Alltoall: personalized exchange of entangled copies —
    /// `qubits[r]` is copied to rank `r`; slot `r` of the result came from
    /// rank `r`. Implemented as N scatters.
    pub fn alltoall(&self, qubits: &[Qubit]) -> Result<Vec<Qubit>> {
        let n = self.size();
        if qubits.len() != n {
            return Err(QmpiError::InvalidArgument(
                "alltoall needs one qubit per rank".into(),
            ));
        }
        let mut out = Vec::with_capacity(n);
        for root in 0..n {
            let tag = self.next_qcoll_tag();
            let arg = if self.rank() == root {
                Some(qubits)
            } else {
                None
            };
            out.push(self.scatter_tagged(arg, root, tag)?);
        }
        Ok(out)
    }

    /// QMPI_Unalltoall: inverse of [`QmpiRank::alltoall`].
    pub fn unalltoall(&self, qubits: &[Qubit], pieces: Vec<Qubit>) -> Result<()> {
        let n = self.size();
        if pieces.len() != n {
            return Err(QmpiError::InvalidArgument(
                "unalltoall piece count mismatch".into(),
            ));
        }
        let mut pieces: Vec<Option<Qubit>> = pieces.into_iter().map(Some).collect();
        for root in (0..n).rev() {
            let tag = self.next_qcoll_tag();
            let piece = pieces[root].take().expect("piece present");
            let arg = if self.rank() == root {
                Some(qubits)
            } else {
                None
            };
            self.unscatter_tagged(arg, piece, root, tag)?;
        }
        Ok(())
    }

    /// QMPI_Alltoall_move: personalized exchange with move semantics
    /// (Table 3 note (a): in-place variants use move resources).
    pub fn alltoall_move(&self, qubits: Vec<Qubit>) -> Result<Vec<Qubit>> {
        let n = self.size();
        if qubits.len() != n {
            return Err(QmpiError::InvalidArgument(
                "alltoall_move needs one qubit per rank".into(),
            ));
        }
        let mut mine = Some(qubits);
        let mut out = Vec::with_capacity(n);
        for root in 0..n {
            let tag = self.next_qcoll_tag();
            let arg = if self.rank() == root {
                mine.take()
            } else {
                None
            };
            out.push(self.scatter_move_tagged(arg, root, tag)?);
        }
        Ok(out)
    }

    // ==================================================================
    // Reduce / Scan (reversible, Section 4.6 linear schedule)
    // ==================================================================

    /// QMPI_Reduce: folds every rank's qubit into a fresh accumulator that
    /// ends on `root`, using the linear chain schedule (N−1 EPR pairs, one
    /// scratch register per intermediate node). Returns the result qubit on
    /// the root plus a [`ReduceHandle`] used by [`QmpiRank::unreduce`].
    pub fn reduce<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        op: &O,
        root: usize,
    ) -> Result<(Option<Qubit>, ReduceHandle)> {
        let tag = self.next_qcoll_tag();
        let n = self.size();
        if root >= n {
            return Err(QmpiError::InvalidArgument(format!(
                "reduce root {root} out of range"
            )));
        }
        if n == 1 {
            let acc = self.alloc_one();
            op.apply(self, qubit, &acc)?;
            return Ok((
                Some(acc),
                ReduceHandle {
                    tag,
                    root,
                    scratch: None,
                },
            ));
        }
        // Chain order: (root+1)%n, (root+2)%n, ..., root.
        let k = (self.rank() + n - root + n - 1) % n; // chain index
        let next = (self.rank() + 1) % n;
        let prev = (self.rank() + n - 1) % n;
        if k == 0 {
            let acc = self.alloc_one();
            op.apply(self, qubit, &acc)?;
            self.send(&acc, next, tag)?;
            Ok((
                None,
                ReduceHandle {
                    tag,
                    root,
                    scratch: Some(acc),
                },
            ))
        } else if k < n - 1 {
            let partial = self.recv(prev, tag)?;
            op.apply(self, qubit, &partial)?;
            self.send(&partial, next, tag)?;
            Ok((
                None,
                ReduceHandle {
                    tag,
                    root,
                    scratch: Some(partial),
                },
            ))
        } else {
            // This rank is the root (chain end).
            let partial = self.recv(prev, tag)?;
            op.apply(self, qubit, &partial)?;
            Ok((
                Some(partial),
                ReduceHandle {
                    tag,
                    root,
                    scratch: None,
                },
            ))
        }
    }

    /// QMPI_Unreduce: uncomputes a reduction — classical communication
    /// only (N−1 bits, zero EPR pairs). The root passes the result qubit
    /// back in; scratch registers are verified to return to |0> and freed.
    pub fn unreduce<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        result: Option<Qubit>,
        handle: ReduceHandle,
        op: &O,
    ) -> Result<()> {
        let ReduceHandle { tag, root, scratch } = handle;
        let n = self.size();
        if n == 1 {
            let acc = result.ok_or_else(|| {
                QmpiError::InvalidArgument("unreduce needs the result qubit".into())
            })?;
            op.unapply(self, qubit, &acc)?;
            self.free_qmem(acc)?;
            return Ok(());
        }
        let k = (self.rank() + n - root + n - 1) % n;
        let next = (self.rank() + 1) % n;
        let prev = (self.rank() + n - 1) % n;
        if k == n - 1 {
            let res = result.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass the reduce result to unreduce".into())
            })?;
            op.unapply(self, qubit, &res)?;
            self.unrecv(res, prev, tag)?;
        } else if k > 0 {
            let acc = scratch
                .ok_or_else(|| QmpiError::Protocol("intermediate rank lost its scratch".into()))?;
            self.unsend(&acc, next, tag)?;
            op.unapply(self, qubit, &acc)?;
            self.unrecv(acc, prev, tag)?;
        } else {
            let acc = scratch
                .ok_or_else(|| QmpiError::Protocol("chain-start rank lost its scratch".into()))?;
            self.unsend(&acc, next, tag)?;
            op.unapply(self, qubit, &acc)?;
            // The accumulator must have returned exactly to |0>; free_qmem
            // verifies this, making unreduce a distributed self-check.
            self.free_qmem(acc)?;
        }
        Ok(())
    }

    /// QMPI_Allreduce: reduce to rank 0 then broadcast — "reduce + copy"
    /// resources (Table 3). Every rank obtains a qubit carrying the
    /// reduction value (the root holds the accumulator itself).
    pub fn allreduce<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        op: &O,
    ) -> Result<(Qubit, AllreduceHandle)> {
        let (result, reduce) = self.reduce(qubit, op, 0)?;
        let bcast_tag = self.next_qcoll_tag();
        let value = if self.rank() == 0 {
            let res = result.expect("root result");
            if self.size() > 1 {
                self.bcast_tree(Some(&res), 0, bcast_tag)?;
            }
            res
        } else {
            self.bcast_tree(None, 0, bcast_tag)?.expect("copy")
        };
        Ok((value, AllreduceHandle { reduce, bcast_tag }))
    }

    /// QMPI_Unallreduce: inverse of [`QmpiRank::allreduce`].
    pub fn unallreduce<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        value: Qubit,
        handle: AllreduceHandle,
        op: &O,
    ) -> Result<()> {
        let AllreduceHandle { reduce, bcast_tag } = handle;
        let _ = bcast_tag;
        // First uncompute the broadcast copies, then the reduction.
        let result = if self.rank() == 0 {
            self.unbcast(Some(&value), None, 0)?;
            Some(value)
        } else {
            self.unbcast(None, Some(value), 0)?;
            None
        };
        self.unreduce(qubit, result, reduce, op)
    }

    /// QMPI_Reduce_scatter_block (one qubit per destination): destination
    /// `r` obtains the reduction of every rank's `qubits[r]`.
    pub fn reduce_scatter_block<O: QuantumReduceOp>(
        &self,
        qubits: &[Qubit],
        op: &O,
    ) -> Result<(Qubit, ReduceScatterHandle)> {
        let n = self.size();
        if qubits.len() != n {
            return Err(QmpiError::InvalidArgument(
                "reduce_scatter_block needs one qubit per rank".into(),
            ));
        }
        let mut handles = Vec::with_capacity(n);
        let mut mine = None;
        #[allow(clippy::needless_range_loop)] // dest is also the reduce root
        for dest in 0..n {
            let (res, h) = self.reduce(&qubits[dest], op, dest)?;
            handles.push(h);
            if self.rank() == dest {
                mine = Some(res.expect("destination result"));
            }
        }
        Ok((mine.expect("own block"), ReduceScatterHandle { handles }))
    }

    /// Inverse of [`QmpiRank::reduce_scatter_block`].
    pub fn unreduce_scatter_block<O: QuantumReduceOp>(
        &self,
        qubits: &[Qubit],
        result: Qubit,
        handle: ReduceScatterHandle,
        op: &O,
    ) -> Result<()> {
        let n = self.size();
        let mut result = Some(result);
        let mut handles: Vec<Option<ReduceHandle>> = handle.handles.into_iter().map(Some).collect();
        for dest in (0..n).rev() {
            let h = handles[dest].take().expect("handle present");
            let res = if self.rank() == dest {
                result.take()
            } else {
                None
            };
            self.unreduce(&qubits[dest], res, h, op)?;
        }
        Ok(())
    }

    /// QMPI_Scan: inclusive prefix reduction along the rank chain; rank r
    /// obtains a qubit carrying `op(q_0, ..., q_r)` (N−1 EPR pairs).
    pub fn scan<O: QuantumReduceOp>(&self, qubit: &Qubit, op: &O) -> Result<(Qubit, ScanHandle)> {
        let tag = self.next_qcoll_tag();
        let n = self.size();
        let r = self.rank();
        let result = if r == 0 {
            let acc = self.alloc_one();
            op.apply(self, qubit, &acc)?;
            if n > 1 {
                self.send(&acc, 1, tag)?;
            }
            acc
        } else {
            let partial = self.recv(r - 1, tag)?;
            op.apply(self, qubit, &partial)?;
            if r < n - 1 {
                self.send(&partial, r + 1, tag)?;
            }
            partial
        };
        Ok((result, ScanHandle { tag }))
    }

    /// QMPI_Unscan: inverse of [`QmpiRank::scan`] (classical-only).
    pub fn unscan<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        result: Qubit,
        handle: ScanHandle,
        op: &O,
    ) -> Result<()> {
        let ScanHandle { tag } = handle;
        let n = self.size();
        let r = self.rank();
        if r < n - 1 {
            self.unsend(&result, r + 1, tag)?;
        }
        op.unapply(self, qubit, &result)?;
        if r > 0 {
            self.unrecv(result, r - 1, tag)?;
        } else {
            self.free_qmem(result)?;
        }
        Ok(())
    }

    /// QMPI_Exscan: exclusive prefix reduction; rank r > 0 obtains a qubit
    /// carrying `op(q_0, ..., q_{r-1})`, rank 0 obtains `None`.
    pub fn exscan<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        op: &O,
    ) -> Result<(Option<Qubit>, ExscanHandle)> {
        let tag = self.next_qcoll_tag();
        let n = self.size();
        let r = self.rank();
        if n == 1 {
            return Ok((None, ExscanHandle { tag, scratch: None }));
        }
        if r == 0 {
            let fwd = self.alloc_one();
            op.apply(self, qubit, &fwd)?;
            self.send(&fwd, 1, tag)?;
            Ok((
                None,
                ExscanHandle {
                    tag,
                    scratch: Some(fwd),
                },
            ))
        } else {
            let partial = self.recv(r - 1, tag)?; // exclusive prefix — the result
            let scratch = if r < n - 1 {
                let fwd = self.alloc_one();
                // Basis-copy the prefix, then fold our own value in.
                self.cnot(&partial, &fwd)?;
                op.apply(self, qubit, &fwd)?;
                self.send(&fwd, r + 1, tag)?;
                Some(fwd)
            } else {
                None
            };
            Ok((Some(partial), ExscanHandle { tag, scratch }))
        }
    }

    /// QMPI_Unexscan: inverse of [`QmpiRank::exscan`].
    pub fn unexscan<O: QuantumReduceOp>(
        &self,
        qubit: &Qubit,
        result: Option<Qubit>,
        handle: ExscanHandle,
        op: &O,
    ) -> Result<()> {
        let ExscanHandle { tag, scratch } = handle;
        let n = self.size();
        let r = self.rank();
        if n == 1 {
            return Ok(());
        }
        if r == 0 {
            let fwd =
                scratch.ok_or_else(|| QmpiError::Protocol("rank 0 lost its scratch".into()))?;
            self.unsend(&fwd, 1, tag)?;
            op.unapply(self, qubit, &fwd)?;
            self.free_qmem(fwd)?;
            Ok(())
        } else {
            let partial = result.ok_or_else(|| {
                QmpiError::InvalidArgument("rank > 0 must pass its exscan result".into())
            })?;
            if let Some(fwd) = scratch {
                self.unsend(&fwd, r + 1, tag)?;
                op.unapply(self, qubit, &fwd)?;
                self.cnot(&partial, &fwd)?;
                self.free_qmem(fwd)?;
            }
            self.unrecv(partial, r - 1, tag)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::BcastAlgorithm;
    use crate::context::run;
    use crate::reduce_ops::Parity;
    use qsim::Pauli;

    const TOL: f64 = 1e-9;

    #[test]
    fn bcast_tree_copies_basis_value() {
        for n in [2usize, 3, 5] {
            let out = run(n, move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.x(&q).unwrap();
                    ctx.bcast(Some(&q), 0).unwrap();
                    ctx.barrier();
                    ctx.measure_and_free(q).unwrap()
                } else {
                    let c = ctx.bcast(None, 0).unwrap().unwrap();
                    ctx.barrier();
                    ctx.measure_and_free(c).unwrap()
                }
            });
            assert!(out.iter().all(|&m| m), "n={n}: all ranks see |1>");
        }
    }

    #[test]
    fn bcast_cat_copies_basis_value() {
        for n in [2usize, 3, 4, 6] {
            let out = run(n, move |ctx| {
                if ctx.rank() == 1 {
                    let q = ctx.alloc_one();
                    ctx.x(&q).unwrap();
                    ctx.bcast_with(BcastAlgorithm::CatState, Some(&q), 1)
                        .unwrap();
                    ctx.barrier();
                    ctx.measure_and_free(q).unwrap()
                } else {
                    let c = ctx
                        .bcast_with(BcastAlgorithm::CatState, None, 1)
                        .unwrap()
                        .unwrap();
                    ctx.barrier();
                    ctx.measure_and_free(c).unwrap()
                }
            });
            assert!(out.iter().all(|&m| m), "n={n}");
        }
    }

    #[test]
    fn bcast_superposition_then_unbcast_restores() {
        for algo in [BcastAlgorithm::BinomialTree, BcastAlgorithm::CatState] {
            let out = run(3, move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.ry(&q, 0.8).unwrap();
                    ctx.rz(&q, 0.3).unwrap();
                    ctx.bcast_with(algo, Some(&q), 0).unwrap();
                    ctx.unbcast(Some(&q), None, 0).unwrap();
                    let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                    let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                    ctx.measure_and_free(q).unwrap();
                    (x, z)
                } else {
                    let c = ctx.bcast_with(algo, None, 0).unwrap().unwrap();
                    ctx.unbcast(None, Some(c), 0).unwrap();
                    (0.0, 0.0)
                }
            });
            let theta: f64 = 0.8;
            let phi: f64 = 0.3;
            assert!((out[0].1 - theta.cos()).abs() < TOL, "{algo:?}");
            assert!((out[0].0 - theta.sin() * phi.cos()).abs() < TOL, "{algo:?}");
        }
    }

    #[test]
    fn bcast_resource_counts_match_table() {
        // Tree bcast: N-1 copies => N-1 EPR pairs, N-1 bits.
        for n in [2usize, 4, 5] {
            let out = run(n, move |ctx| {
                let (d, q) = ctx.measure_resources(|| {
                    if ctx.rank() == 0 {
                        let q = ctx.alloc_one();
                        ctx.bcast(Some(&q), 0).unwrap();
                        q
                    } else {
                        ctx.bcast(None, 0).unwrap().unwrap()
                    }
                });
                ctx.measure_and_free(q).unwrap();
                d
            });
            assert_eq!(out[0].epr_pairs as usize, n - 1, "n={n}");
            assert_eq!(out[0].classical_bits as usize, n - 1, "n={n}");
        }
    }

    #[test]
    fn cat_bcast_uses_constant_rounds() {
        for n in [4usize, 8] {
            let out = run(n, move |ctx| {
                let (d, q) = ctx.measure_resources(|| {
                    if ctx.rank() == 0 {
                        let q = ctx.alloc_one();
                        ctx.bcast_with(BcastAlgorithm::CatState, Some(&q), 0)
                            .unwrap();
                        q
                    } else {
                        ctx.bcast_with(BcastAlgorithm::CatState, None, 0)
                            .unwrap()
                            .unwrap()
                    }
                });
                ctx.measure_and_free(q).unwrap();
                d
            });
            assert_eq!(
                out[0].epr_pairs as usize,
                n - 1,
                "n={n}: spanning-tree pairs"
            );
            assert_eq!(out[0].epr_rounds, 2, "n={n}: 2E quantum time (Fig. 4)");
        }
    }

    #[test]
    fn gather_then_ungather() {
        let out = run(3, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() == 2 {
                ctx.x(&q).unwrap();
            }
            let copies = ctx.gather(&q, 0).unwrap();
            let ms = if ctx.rank() == 0 {
                let copies = copies.unwrap();
                let ms: Vec<bool> = copies.iter().map(|c| ctx.measure(c).unwrap()).collect();
                ctx.ungather(&q, Some(copies), 0).unwrap();
                ms
            } else {
                ctx.ungather(&q, None, 0).unwrap();
                vec![]
            };
            // Original must be intact.
            let p = ctx.prob_one(&q).unwrap();
            ctx.measure_and_free(q).unwrap();
            (ms, p)
        });
        assert_eq!(out[0].0, vec![false, false, true]);
        assert!(out[0].1 < TOL);
        assert!((out[2].1 - 1.0).abs() < TOL);
    }

    #[test]
    fn gather_move_and_back() {
        let out = run(3, |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, 0.5 + ctx.rank() as f64).unwrap();
            let gathered = ctx.gather_move(q, 1).unwrap();
            if ctx.rank() == 1 {
                let gathered = gathered.unwrap();
                assert_eq!(gathered.len(), 3);
                // All three qubits now live on rank 1; a local gate on each
                // must succeed (ownership moved).
                for g in &gathered {
                    ctx.z(g).unwrap();
                    ctx.z(g).unwrap();
                }
                let back = ctx.ungather_move(Some(gathered), 1).unwrap();
                let z = ctx.expectation(&[(&back, Pauli::Z)]).unwrap();
                ctx.measure_and_free(back).unwrap();
                z
            } else {
                let back = ctx.ungather_move(None, 1).unwrap();
                let z = ctx.expectation(&[(&back, Pauli::Z)]).unwrap();
                ctx.measure_and_free(back).unwrap();
                z
            }
        });
        for (r, z) in out.iter().enumerate() {
            let theta = 0.5 + r as f64;
            assert!((z - theta.cos()).abs() < TOL, "rank {r}");
        }
    }

    #[test]
    fn scatter_and_unscatter() {
        let out = run(3, |ctx| {
            if ctx.rank() == 0 {
                let qs = ctx.alloc_qmem(3);
                ctx.x(&qs[1]).unwrap();
                ctx.x(&qs[2]).unwrap();
                let piece = ctx.scatter(Some(&qs), 0).unwrap();
                let m = ctx.measure(&piece).unwrap();
                ctx.unscatter(Some(&qs), piece, 0).unwrap();
                for q in qs {
                    ctx.measure_and_free(q).unwrap();
                }
                m
            } else {
                let piece = ctx.scatter(None, 0).unwrap();
                let m = ctx.measure(&piece).unwrap();
                ctx.unscatter(None, piece, 0).unwrap();
                m
            }
        });
        assert_eq!(out, vec![false, true, true]);
    }

    #[test]
    fn scatter_move_transfers_ownership() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let qs = ctx.alloc_qmem(2);
                ctx.ry(&qs[1], 1.1).unwrap();
                let own = ctx.scatter_move(Some(qs), 0).unwrap();
                let z = ctx.expectation(&[(&own, Pauli::Z)]).unwrap();
                ctx.measure_and_free(own).unwrap();
                z
            } else {
                let piece = ctx.scatter_move(None, 0).unwrap();
                // Rotation qubit now local: apply a local rotation (the
                // Section 4.5 use case: scatter-move for parallel rotations).
                ctx.rz(&piece, 0.4).unwrap();
                let z = ctx.expectation(&[(&piece, Pauli::Z)]).unwrap();
                ctx.measure_and_free(piece).unwrap();
                z
            }
        });
        assert!((out[0] - 1.0).abs() < TOL);
        assert!((out[1] - (1.1f64).cos()).abs() < TOL);
    }

    #[test]
    fn allgather_all_ranks_see_all_values() {
        let out = run(3, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() == 1 {
                ctx.x(&q).unwrap();
            }
            let copies = ctx.allgather(&q).unwrap();
            let ms: Vec<bool> = copies.iter().map(|c| ctx.measure(c).unwrap()).collect();
            ctx.unallgather(&q, copies).unwrap();
            ctx.measure_and_free(q).unwrap();
            ms
        });
        for ms in out {
            assert_eq!(ms, vec![false, true, false]);
        }
    }

    #[test]
    fn alltoall_exchanges_values() {
        let out = run(3, |ctx| {
            // qubits[r] encodes bit (rank == r+... ): set q[r] = 1 iff r == my rank.
            let qs = ctx.alloc_qmem(3);
            ctx.x(&qs[ctx.rank()]).unwrap();
            let pieces = ctx.alltoall(&qs).unwrap();
            let ms: Vec<bool> = pieces.iter().map(|p| ctx.measure(p).unwrap()).collect();
            ctx.unalltoall(&qs, pieces).unwrap();
            for q in qs {
                ctx.measure_and_free(q).unwrap();
            }
            ms
        });
        // pieces[s] on rank r came from rank s's qubit index r; it is 1 iff r == s...
        // rank r receives from s the qubit qs[r] of s, which is 1 iff s == r.
        for (r, ms) in out.iter().enumerate() {
            for (s, &m) in ms.iter().enumerate() {
                assert_eq!(m, s == r, "rank {r} slot {s}");
            }
        }
    }

    #[test]
    fn alltoall_move_permutes_qubits() {
        let out = run(2, |ctx| {
            let qs = ctx.alloc_qmem(2);
            // Encode (rank, dest) in a rotation angle on each qubit.
            for (dest, q) in qs.iter().enumerate() {
                ctx.ry(q, (ctx.rank() * 2 + dest) as f64 * 0.3).unwrap();
            }
            let received = ctx.alltoall_move(qs).unwrap();
            let zs: Vec<f64> = received
                .iter()
                .map(|q| ctx.expectation(&[(q, Pauli::Z)]).unwrap())
                .collect();
            for q in received {
                ctx.measure_and_free(q).unwrap();
            }
            zs
        });
        // Rank r slot s holds the qubit prepared by rank s for dest r:
        // angle = (s*2 + r) * 0.3.
        for (r, zs) in out.iter().enumerate() {
            for (s, &z) in zs.iter().enumerate() {
                let angle = (s * 2 + r) as f64 * 0.3;
                assert!((z - angle.cos()).abs() < TOL, "rank {r} slot {s}");
            }
        }
    }

    #[test]
    fn reduce_parity_of_basis_states() {
        for n in [2usize, 3, 4, 5] {
            for root in 0..n {
                let out = run(n, move |ctx| {
                    let q = ctx.alloc_one();
                    // Odd ranks contribute a 1.
                    if ctx.rank() % 2 == 1 {
                        ctx.x(&q).unwrap();
                    }
                    let (result, handle) = ctx.reduce(&q, &Parity, root).unwrap();
                    let m = result.as_ref().map(|res| {
                        let z = ctx.expectation(&[(res, Pauli::Z)]).unwrap();
                        z < 0.0 // <Z> = -1 means parity 1
                    });
                    ctx.unreduce(&q, result, handle, &Parity).unwrap();
                    ctx.measure_and_free(q).unwrap();
                    m
                });
                let expect = (1..n).step_by(2).count() % 2 == 1;
                for (r, m) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(m, Some(expect), "n={n} root={root}");
                    } else {
                        assert_eq!(m, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_costs_match_table1() {
        // reduce: N-1 EPR pairs, N-1 bits; unreduce: 0 EPR, N-1 bits.
        for n in [3usize, 5] {
            let out = run(n, move |ctx| {
                let q = ctx.alloc_one();
                let (after_reduce, (result, handle)) =
                    ctx.measure_resources(|| ctx.reduce(&q, &Parity, 0).unwrap());
                let (after_unreduce, ()) = ctx.measure_resources(|| {
                    ctx.unreduce(&q, result, handle, &Parity).unwrap();
                });
                ctx.free_qmem(q).unwrap();
                (after_reduce, after_unreduce)
            });
            let (red, unred) = out[0];
            assert_eq!(red.epr_pairs as usize, n - 1, "reduce EPR, n={n}");
            assert_eq!(red.classical_bits as usize, n - 1, "reduce bits, n={n}");
            assert_eq!(unred.epr_pairs, 0, "unreduce EPR, n={n}");
            assert_eq!(unred.classical_bits as usize, n - 1, "unreduce bits, n={n}");
        }
    }

    #[test]
    fn reduce_on_superpositions_is_coherent() {
        // Reduce of |+>|+> must stay coherent: after unreduce the plus
        // states are restored exactly.
        let out = run(2, |ctx| {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
            ctx.unreduce(&q, result, handle, &Parity).unwrap();
            let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
            ctx.measure_and_free(q).unwrap();
            x
        });
        assert!((out[0] - 1.0).abs() < TOL);
        assert!((out[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn allreduce_parity_visible_everywhere() {
        let out = run(4, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() == 1 || ctx.rank() == 2 {
                ctx.x(&q).unwrap();
            }
            let (value, handle) = ctx.allreduce(&q, &Parity).unwrap();
            let z = ctx.expectation(&[(&value, Pauli::Z)]).unwrap();
            ctx.unallreduce(&q, value, handle, &Parity).unwrap();
            ctx.measure_and_free(q).unwrap();
            z
        });
        // Parity of {0,1,1,0} = 0 => <Z> = +1 on every rank.
        for z in out {
            assert!((z - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn scan_computes_prefix_parities() {
        let out = run(4, |ctx| {
            let q = ctx.alloc_one();
            // Input bits: 1, 0, 1, 1 by rank.
            if ctx.rank() != 1 {
                ctx.x(&q).unwrap();
            }
            let (result, handle) = ctx.scan(&q, &Parity).unwrap();
            let z = ctx.expectation(&[(&result, Pauli::Z)]).unwrap();
            ctx.unscan(&q, result, handle, &Parity).unwrap();
            ctx.measure_and_free(q).unwrap();
            z < 0.0
        });
        // Prefix parities of 1,0,1,1: 1, 1, 0, 1.
        assert_eq!(out, vec![true, true, false, true]);
    }

    #[test]
    fn exscan_computes_exclusive_prefixes() {
        let out = run(4, |ctx| {
            let q = ctx.alloc_one();
            if ctx.rank() != 1 {
                ctx.x(&q).unwrap();
            }
            let (result, handle) = ctx.exscan(&q, &Parity).unwrap();
            let bit = result
                .as_ref()
                .map(|res| ctx.expectation(&[(res, Pauli::Z)]).unwrap() < 0.0);
            ctx.unexscan(&q, result, handle, &Parity).unwrap();
            ctx.measure_and_free(q).unwrap();
            bit
        });
        // Exclusive prefix parities of 1,0,1,1: -, 1, 1, 0.
        assert_eq!(out, vec![None, Some(true), Some(true), Some(false)]);
    }

    #[test]
    fn reduce_scatter_block_parities() {
        let out = run(3, |ctx| {
            let qs = ctx.alloc_qmem(3);
            // Rank r sets qubit d iff (r + d) is even.
            for (d, q) in qs.iter().enumerate() {
                if (ctx.rank() + d) % 2 == 0 {
                    ctx.x(q).unwrap();
                }
            }
            let (mine, handle) = ctx.reduce_scatter_block(&qs, &Parity).unwrap();
            let bit = ctx.expectation(&[(&mine, Pauli::Z)]).unwrap() < 0.0;
            ctx.unreduce_scatter_block(&qs, mine, handle, &Parity)
                .unwrap();
            for q in qs {
                ctx.measure_and_free(q).unwrap();
            }
            bit
        });
        // Destination d receives parity over r of (r+d mod 2 == 0): bits per
        // dest: d=0: ranks {0,2} -> parity 0; d=1: rank {1} -> 1; d=2: {0,2} -> 0.
        assert_eq!(out, vec![false, true, false]);
    }
}
