//! Variable-count collectives: `QMPI_Gatherv` / `QMPI_Scatterv` and their
//! move variants + inverses (Table 3). Each rank contributes or receives a
//! *vector* of qubits; counts may differ per rank and are exchanged as
//! classical metadata.

use crate::context::QmpiRank;
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;

impl QmpiRank {
    /// QMPI_Gatherv: the root collects entangled copies of every rank's
    /// register (variable lengths), concatenated in rank order.
    pub fn gatherv(&self, qubits: &[Qubit], root: usize) -> Result<Option<Vec<Vec<Qubit>>>> {
        let tag = self.next_qcoll_tag();
        // Exchange counts classically.
        let counts = self.proto.gather(&qubits.len(), root);
        if self.rank() == root {
            let counts = counts.expect("root obtains counts");
            let mut out = Vec::with_capacity(self.size());
            for (r, &count) in counts.iter().enumerate() {
                if r == root {
                    let mut own = Vec::with_capacity(count);
                    for q in qubits {
                        own.push(self.fanout_local(q)?);
                    }
                    out.push(own);
                } else {
                    let mut block = Vec::with_capacity(count);
                    for _ in 0..count {
                        block.push(self.recv(r, tag)?);
                    }
                    out.push(block);
                }
            }
            Ok(Some(out))
        } else {
            for q in qubits {
                self.send(q, root, tag)?;
            }
            Ok(None)
        }
    }

    /// QMPI_Ungatherv: inverse of [`QmpiRank::gatherv`].
    pub fn ungatherv(
        &self,
        qubits: &[Qubit],
        copies: Option<Vec<Vec<Qubit>>>,
        root: usize,
    ) -> Result<()> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let copies = copies.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass the gathered blocks".into())
            })?;
            for (r, block) in copies.into_iter().enumerate() {
                if r == root {
                    for (q, c) in qubits.iter().zip(block) {
                        self.unfanout_local(q, c)?;
                    }
                } else {
                    // Uncopy in reverse creation order within the block.
                    for c in block.into_iter().rev() {
                        self.unrecv(c, r, tag)?;
                    }
                }
            }
            Ok(())
        } else {
            for q in qubits.iter().rev() {
                self.unsend(q, root, tag)?;
            }
            Ok(())
        }
    }

    /// QMPI_Scatterv: the root fans out one variable-length block per rank
    /// (entangled copies); returns this rank's block.
    pub fn scatterv(&self, blocks: Option<&[Vec<Qubit>]>, root: usize) -> Result<Vec<Qubit>> {
        let tag = self.next_qcoll_tag();
        // Distribute counts classically.
        let my_count: usize = if self.rank() == root {
            let blocks = blocks.ok_or_else(|| {
                QmpiError::InvalidArgument("scatterv root must supply the blocks".into())
            })?;
            if blocks.len() != self.size() {
                return Err(QmpiError::InvalidArgument(
                    "one block per rank required".into(),
                ));
            }
            let counts: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
            self.proto.scatter(Some(counts), root)
        } else {
            self.proto.scatter(None, root)
        };
        if self.rank() == root {
            let blocks = blocks.expect("checked above");
            for (r, block) in blocks.iter().enumerate() {
                if r == root {
                    continue;
                }
                for q in block {
                    self.send(q, r, tag)?;
                }
            }
            let mut own = Vec::with_capacity(my_count);
            for q in &blocks[root] {
                own.push(self.fanout_local(q)?);
            }
            Ok(own)
        } else {
            (0..my_count).map(|_| self.recv(root, tag)).collect()
        }
    }

    /// QMPI_Unscatterv: inverse of [`QmpiRank::scatterv`].
    pub fn unscatterv(
        &self,
        blocks: Option<&[Vec<Qubit>]>,
        piece: Vec<Qubit>,
        root: usize,
    ) -> Result<()> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let blocks = blocks.ok_or_else(|| {
                QmpiError::InvalidArgument("unscatterv root must supply the blocks".into())
            })?;
            for (r, block) in blocks.iter().enumerate() {
                if r == root {
                    continue;
                }
                for q in block.iter().rev() {
                    self.unsend(q, r, tag)?;
                }
            }
            for (q, c) in blocks[root].iter().zip(piece) {
                self.unfanout_local(q, c)?;
            }
            Ok(())
        } else {
            for q in piece.into_iter().rev() {
                self.unrecv(q, root, tag)?;
            }
            Ok(())
        }
    }

    /// QMPI_Gatherv_move: variable-count gather with move semantics.
    pub fn gatherv_move(&self, qubits: Vec<Qubit>, root: usize) -> Result<Option<Vec<Vec<Qubit>>>> {
        let tag = self.next_qcoll_tag();
        let counts = self.proto.gather(&qubits.len(), root);
        if self.rank() == root {
            let counts = counts.expect("root obtains counts");
            let mut qubits = Some(qubits);
            let mut out = Vec::with_capacity(self.size());
            for (r, &count) in counts.iter().enumerate() {
                if r == root {
                    out.push(qubits.take().expect("own block"));
                } else {
                    let mut block = Vec::with_capacity(count);
                    for _ in 0..count {
                        block.push(self.recv_move(r, tag)?);
                    }
                    out.push(block);
                }
            }
            Ok(Some(out))
        } else {
            for q in qubits {
                self.send_move(q, root, tag)?;
            }
            Ok(None)
        }
    }

    /// QMPI_Ungatherv_move: returns the gathered registers to their origins.
    pub fn ungatherv_move(
        &self,
        gathered: Option<Vec<Vec<Qubit>>>,
        root: usize,
        my_count: usize,
    ) -> Result<Vec<Qubit>> {
        let tag = self.next_qcoll_tag();
        if self.rank() == root {
            let gathered = gathered.ok_or_else(|| {
                QmpiError::InvalidArgument("root must pass the gathered blocks".into())
            })?;
            let mut own = None;
            for (r, block) in gathered.into_iter().enumerate() {
                if r == root {
                    own = Some(block);
                } else {
                    for q in block {
                        self.send_move(q, r, tag)?;
                    }
                }
            }
            Ok(own.expect("own block"))
        } else {
            (0..my_count).map(|_| self.recv_move(root, tag)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::context::run;

    #[test]
    fn gatherv_variable_register_sizes() {
        // Rank r contributes r+1 qubits; the root sees all blocks with the
        // right values.
        let out = run(3, |ctx| {
            let n = ctx.rank() + 1;
            let qs = ctx.alloc_qmem(n);
            // Encode rank in the first qubit: |1> iff rank is odd.
            if ctx.rank() % 2 == 1 {
                ctx.x(&qs[0]).unwrap();
            }
            let blocks = ctx.gatherv(&qs, 0).unwrap();
            let ms = if ctx.rank() == 0 {
                let blocks = blocks.unwrap();
                assert_eq!(
                    blocks.iter().map(|b| b.len()).collect::<Vec<_>>(),
                    vec![1, 2, 3]
                );
                let ms: Vec<bool> = blocks.iter().map(|b| ctx.measure(&b[0]).unwrap()).collect();
                ctx.ungatherv(&qs, Some(blocks), 0).unwrap();
                ms
            } else {
                ctx.ungatherv(&qs, None, 0).unwrap();
                vec![]
            };
            for q in qs {
                ctx.measure_and_free(q).unwrap();
            }
            ms
        });
        assert_eq!(out[0], vec![false, true, false]);
    }

    #[test]
    fn scatterv_variable_blocks_roundtrip() {
        let out = run(3, |ctx| {
            let blocks = if ctx.rank() == 1 {
                // Root prepares blocks of sizes 1, 2, 1 with block r's
                // first qubit set iff r == 2.
                let b0 = ctx.alloc_qmem(1);
                let b1 = ctx.alloc_qmem(2);
                let b2 = ctx.alloc_qmem(1);
                ctx.x(&b2[0]).unwrap();
                Some(vec![b0, b1, b2])
            } else {
                None
            };
            let piece = ctx.scatterv(blocks.as_deref(), 1).unwrap();
            let m = ctx.measure(&piece[0]).unwrap();
            ctx.unscatterv(blocks.as_deref(), piece, 1).unwrap();
            if let Some(blocks) = blocks {
                for b in blocks {
                    for q in b {
                        ctx.measure_and_free(q).unwrap();
                    }
                }
            }
            m
        });
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn gatherv_move_concentrates_then_returns() {
        let out = run(2, |ctx| {
            let n = 2 - ctx.rank(); // rank 0: 2 qubits, rank 1: 1 qubit
            let qs = ctx.alloc_qmem(n);
            ctx.ry(&qs[0], 0.4 + ctx.rank() as f64).unwrap();
            let gathered = ctx.gatherv_move(qs, 0).unwrap();
            if ctx.rank() == 0 {
                let gathered = gathered.unwrap();
                assert_eq!(gathered[0].len(), 2);
                assert_eq!(gathered[1].len(), 1);
                // All qubits now local to rank 0: local gates succeed.
                for block in &gathered {
                    for q in block {
                        ctx.z(q).unwrap();
                        ctx.z(q).unwrap();
                    }
                }
                let back = ctx.ungatherv_move(Some(gathered), 0, 2).unwrap();
                let z = ctx.expectation(&[(&back[0], qsim::Pauli::Z)]).unwrap();
                for q in back {
                    ctx.measure_and_free(q).unwrap();
                }
                z
            } else {
                let back = ctx.ungatherv_move(None, 0, n).unwrap();
                let z = ctx.expectation(&[(&back[0], qsim::Pauli::Z)]).unwrap();
                for q in back {
                    ctx.measure_and_free(q).unwrap();
                }
                z
            }
        });
        assert!((out[0] - (0.4f64).cos()).abs() < 1e-9);
        assert!((out[1] - (1.4f64).cos()).abs() < 1e-9);
    }

    #[test]
    fn empty_contributions_allowed() {
        let out = run(2, |ctx| {
            let qs = if ctx.rank() == 0 {
                ctx.alloc_qmem(1)
            } else {
                vec![]
            };
            let blocks = ctx.gatherv(&qs, 0).unwrap();
            if ctx.rank() == 0 {
                let blocks = blocks.unwrap();
                assert_eq!(blocks[0].len(), 1);
                assert!(blocks[1].is_empty());
                ctx.ungatherv(&qs, Some(blocks), 0).unwrap();
            } else {
                ctx.ungatherv(&qs, None, 0).unwrap();
            }
            for q in qs {
                ctx.free_qmem(q).unwrap();
            }
            true
        });
        assert!(out[0] && out[1]);
    }
}
