//! Cat-state establishment in constant quantum depth (Fig. 4, Section 7.1).
//!
//! `|cat(n)> = (|0...0> + |1...1>)/sqrt(2)` spanning one qubit per rank is
//! built by (1) creating EPR pairs along the edges of a chain spanning tree
//! — two parallel rounds (even edges, then odd edges), i.e. `2E` quantum
//! time; (2) a local parity measurement merging the two halves at every
//! interior rank; (3) a classical `MPI_Exscan` of the outcomes that tells
//! each rank whether to apply a Pauli-X fixup. Quantum depth is constant in
//! `n`; only the classical fixup is logarithmic.
//!
//! The establishment phase is backend-aware: instead of `n - 1` separate
//! rendezvous (each taking the backend lock once), the edge qubit ids are
//! gathered at rank 0, which entangles the whole spanning tree through
//! [`crate::QuantumBackend::entangle_epr_batch`] — a *single* backend
//! acquisition. The *modeled* quantum schedule is unchanged (still two
//! parallel establishment rounds, still `n - 1` pairs — the ledger records
//! the same bill); what the batching removes is the simulator-side lock
//! traffic that dominated 64-rank broadcast latency.

use crate::context::{QTag, QmpiRank};
use crate::error::Result;
use crate::qubit::Qubit;

impl QmpiRank {
    /// Establishes `|cat(n)>` over all ranks; each rank gets its share.
    ///
    /// Collective: every rank must call it. Costs `n-1` EPR pairs in 2
    /// parallel establishment rounds (1 round for n = 2).
    pub fn cat_establish(&self) -> Result<Qubit> {
        let tag = self.next_qcoll_tag();
        self.cat_establish_tagged(tag)
    }

    pub(crate) fn cat_establish_tagged(&self, tag: QTag) -> Result<Qubit> {
        let n = self.size();
        let r = self.rank();
        if n == 1 {
            // Single node: the "cat" is a local |+>.
            let q = self.alloc_one();
            self.h(&q)?;
            return Ok(q);
        }
        // Chain edges e_k = (k, k+1). On hardware even-k edges establish in
        // round 0 and odd-k edges in round 1 — each node touches at most one
        // edge per round, satisfying the SENDQ one-EPR-establishment-at-a-
        // time rule — and that is what the ledger records. In the simulator
        // the whole spanning tree is entangled in ONE batched backend
        // acquisition: every rank reports its edge qubit ids to rank 0
        // (substrate control traffic, not protocol bits), rank 0 drives
        // `entangle_epr_batch`, and a broadcast acknowledges completion.
        let _ = tag; // establishment no longer needs per-edge rendezvous tags
        let left: Option<Qubit> = if r > 0 { Some(self.alloc_one()) } else { None };
        let right: Option<Qubit> = if r + 1 < n {
            Some(self.alloc_one())
        } else {
            None
        };
        if r == 0 {
            // One round when only even edges exist (n == 2).
            let rounds = if n > 2 { 2 } else { 1 };
            for _ in 0..rounds {
                self.ledger().record_epr_round();
            }
        }
        const NO_QUBIT: u64 = u64::MAX;
        let edge_ids = vec![
            left.as_ref().map(|q| q.id().0).unwrap_or(NO_QUBIT),
            right.as_ref().map(|q| q.id().0).unwrap_or(NO_QUBIT),
        ];
        if r != 0 {
            self.ledger.record_control();
        }
        let gathered = self.proto.gather(&edge_ids, 0);
        let ok = if r == 0 {
            let ids = gathered.expect("root gathers edge ids");
            let mut pairs = Vec::with_capacity(n - 1);
            for k in 0..n - 1 {
                let right_of_k = ids[k][1];
                let left_of_next = ids[k + 1][0];
                debug_assert!(right_of_k != NO_QUBIT && left_of_next != NO_QUBIT);
                pairs.push((qsim::QubitId(right_of_k), qsim::QubitId(left_of_next)));
            }
            // Flush point: every rank flushed at its edge-qubit allocation,
            // and no gates can be recorded between that and the gather, so
            // this is a no-op backstop keeping the invariant local.
            self.flush()?;
            let result = self.backend.entangle_epr_batch(&pairs);
            if result.is_ok() {
                for _ in 0..pairs.len() {
                    self.ledger.record_epr_pair();
                }
            }
            self.ledger.record_control();
            self.proto.bcast(Some(result.is_ok()), 0)
        } else {
            self.proto.bcast::<bool>(None, 0)
        };
        if !ok {
            return Err(crate::error::QmpiError::Protocol(
                "batched cat-state EPR establishment failed at rank 0".into(),
            ));
        }
        // Each rank buffers the halves it holds, subject to the S budget.
        for held in [&left, &right] {
            if held.is_some() {
                let level = self.ledger.buffer_inc(r);
                self.check_buffer(level)?;
            }
        }
        // Merge at interior ranks: CNOT(left -> right), measure right.
        let (keep, outcome) = match (left, right) {
            (Some(l), Some(rq)) => {
                self.cnot(&l, &rq)?;
                let m = self.measure_and_free(rq)?;
                self.ledger.buffer_dec(self.rank());
                // The surviving half is promoted to a data qubit.
                self.ledger.buffer_dec(self.rank());
                (l, m)
            }
            (None, Some(rq)) => {
                self.ledger.buffer_dec(self.rank());
                (rq, false)
            }
            (Some(l), None) => {
                self.ledger.buffer_dec(self.rank());
                (l, false)
            }
            (None, None) => unreachable!("n >= 2 gives every rank at least one edge"),
        };
        // Classical exscan of merge outcomes; rank k applies X^(r_1 ^ ... ^ r_{k-1}).
        // Interior ranks contribute their outcome bit to the exscan
        // regardless of its value.
        if r > 0 && r + 1 < n {
            self.ledger.record_classical(1);
        }
        let fix = self
            .proto
            .exscan(outcome as u8, &cmpi::ops::bxor)
            .unwrap_or(0);
        if fix != 0 {
            self.x(&keep)?;
        }
        Ok(keep)
    }

    /// Disbands a cat state previously built by [`QmpiRank::cat_establish`]:
    /// every rank measures its share in the X basis; for a pure `|cat(n)>`
    /// the parity of all outcomes is always even, which this function
    /// asserts — a distributed integrity check of the state.
    pub fn cat_disband(&self, share: Qubit) -> Result<()> {
        self.h(&share)?;
        let m = self.measure_and_free(share)?;
        let parity = self.proto.allreduce(m as u8, &cmpi::ops::bxor);
        if parity != 0 {
            return Err(crate::error::QmpiError::Protocol(
                "cat-state X-parity check failed: state was not a pure cat state".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::context::run;
    use qsim::Pauli;

    #[test]
    fn cat_state_is_ghz() {
        for n in [2usize, 3, 4, 5] {
            let out = run(n, move |ctx| {
                let share = ctx.cat_establish().unwrap();
                ctx.barrier();
                // All shares agree under Z measurement.
                let m = ctx.measure(&share).unwrap();
                ctx.measure_and_free(share).unwrap();
                m
            });
            assert!(
                out.iter().all(|&m| m == out[0]),
                "n={n}: GHZ shares must agree"
            );
        }
    }

    #[test]
    fn cat_state_has_full_xx_correlations() {
        // <X...X> = +1 for |cat(n)>; verified via the collective disband check.
        for n in [2usize, 3, 4, 6] {
            let out = run(n, move |ctx| {
                let share = ctx.cat_establish().unwrap();
                ctx.cat_disband(share).is_ok()
            });
            assert!(out.iter().all(|&ok| ok), "n={n}");
        }
    }

    #[test]
    fn cat_uses_n_minus_1_pairs_in_two_rounds() {
        for n in [2usize, 3, 5, 8] {
            let out = run(n, move |ctx| {
                let (d, share) = ctx.measure_resources(|| ctx.cat_establish().unwrap());
                ctx.measure_and_free(share).unwrap();
                d
            });
            assert_eq!(out[0].epr_pairs as usize, n - 1, "n={n}");
            let expected_rounds = if n > 2 { 2 } else { 1 };
            assert_eq!(
                out[0].epr_rounds, expected_rounds,
                "n={n}: constant quantum depth (Fig. 4)"
            );
        }
    }

    #[test]
    fn cat_zz_expectation_is_one() {
        let out = run(3, |ctx| {
            let share = ctx.cat_establish().unwrap();
            ctx.barrier();
            let z = if ctx.rank() == 0 {
                // Global diagnostic from one rank: <Z_i Z_j> = 1 for any pair
                // — validated locally per rank against its own share instead.
                ctx.expectation(&[(&share, Pauli::Z)]).unwrap()
            } else {
                ctx.expectation(&[(&share, Pauli::Z)]).unwrap()
            };
            ctx.barrier();
            ctx.measure_and_free(share).unwrap();
            z
        });
        // Each single-qubit <Z> of a GHZ state is 0.
        for z in out {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn single_rank_cat_is_plus() {
        let out = run(1, |ctx| {
            let share = ctx.cat_establish().unwrap();
            let x = ctx.expectation(&[(&share, Pauli::X)]).unwrap();
            ctx.measure_and_free(share).unwrap();
            x
        });
        assert!((out[0] - 1.0).abs() < 1e-9);
    }
}
