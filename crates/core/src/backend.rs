//! The shared simulation backend.
//!
//! Mirrors the paper's prototype architecture (Section 6): "all ranks forward
//! quantum operations to rank 0, which then applies the operation to the
//! state vector". Here the forwarding is a lock acquisition instead of an MPI
//! message to a dedicated thread — identical serialization semantics, and
//! the quantum state faithfully represents the distributed machine at every
//! point.
//!
//! The backend is also where *locality* is enforced: multi-qubit gates
//! between qubits owned by different ranks are rejected, so algorithm code
//! must communicate via QMPI exactly as on real distributed hardware. The
//! only cross-rank operation is [`Backend::entangle_epr`], which models the
//! quantum-coherent interconnect establishing an EPR pair.

use crate::error::{QmpiError, Result};
use parking_lot::Mutex;
use qsim::{Gate, Pauli, QubitId, Simulator, State};
use std::collections::HashMap;

struct Inner {
    sim: Simulator,
    owner: HashMap<QubitId, usize>,
}

/// Shared, lock-guarded simulator plus the qubit-ownership registry.
pub struct Backend {
    inner: Mutex<Inner>,
}

impl Backend {
    /// Creates a backend with a deterministic measurement RNG seed.
    pub fn new(seed: u64) -> Self {
        Backend {
            inner: Mutex::new(Inner { sim: Simulator::new(seed), owner: HashMap::new() }),
        }
    }

    /// Allocates `n` fresh |0> qubits owned by `rank`.
    pub fn alloc(&self, rank: usize, n: usize) -> Vec<QubitId> {
        let mut g = self.inner.lock();
        let ids = g.sim.alloc_n(n);
        for &id in &ids {
            g.owner.insert(id, rank);
        }
        ids
    }

    /// Frees a classical-state qubit owned by `rank`.
    pub fn free(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, q)?;
        let out = g.sim.free(q)?;
        g.owner.remove(&q);
        Ok(out)
    }

    /// Measures and frees a qubit owned by `rank`.
    pub fn measure_and_free(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, q)?;
        let out = g.sim.measure_and_free(q)?;
        g.owner.remove(&q);
        Ok(out)
    }

    fn check_owner(owner: &HashMap<QubitId, usize>, rank: usize, q: QubitId) -> Result<()> {
        match owner.get(&q) {
            None => Err(QmpiError::Sim(qsim::SimError::UnknownQubit(q))),
            Some(&o) if o == rank => Ok(()),
            Some(&o) => Err(QmpiError::Locality { qubit: q, owner: o, acting: rank }),
        }
    }

    /// Owner rank of a qubit.
    pub fn owner_of(&self, q: QubitId) -> Option<usize> {
        self.inner.lock().owner.get(&q).copied()
    }

    /// Applies a local single-qubit gate.
    pub fn apply(&self, rank: usize, gate: Gate, q: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, q)?;
        g.sim.apply(gate, q)?;
        Ok(())
    }

    /// Applies a local CNOT; both qubits must live on `rank`.
    pub fn cnot(&self, rank: usize, control: QubitId, target: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, control)?;
        Self::check_owner(&g.owner, rank, target)?;
        g.sim.cnot(control, target)?;
        Ok(())
    }

    /// Applies a local CZ; both qubits must live on `rank`.
    pub fn cz(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, a)?;
        Self::check_owner(&g.owner, rank, b)?;
        g.sim.cz(a, b)?;
        Ok(())
    }

    /// Applies a local SWAP; both qubits must live on `rank`.
    pub fn swap(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, a)?;
        Self::check_owner(&g.owner, rank, b)?;
        g.sim.swap(a, b)?;
        Ok(())
    }

    /// Applies a local multi-controlled gate; all qubits must live on `rank`.
    pub fn apply_controlled(
        &self,
        rank: usize,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<()> {
        let mut g = self.inner.lock();
        for &c in controls {
            Self::check_owner(&g.owner, rank, c)?;
        }
        Self::check_owner(&g.owner, rank, target)?;
        g.sim.apply_controlled(controls, gate, target)?;
        Ok(())
    }

    /// Measures a qubit (projective, qubit survives).
    pub fn measure(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.lock();
        Self::check_owner(&g.owner, rank, q)?;
        Ok(g.sim.measure(q)?)
    }

    /// Probability of measuring 1 (non-destructive diagnostic).
    pub fn prob_one(&self, rank: usize, q: QubitId) -> Result<f64> {
        let g = self.inner.lock();
        Self::check_owner(&g.owner, rank, q)?;
        Ok(g.sim.prob_one(q)?)
    }

    /// Local joint Z-parity measurement (all qubits on `rank`).
    pub fn measure_z_parity(&self, rank: usize, qubits: &[QubitId]) -> Result<bool> {
        let mut g = self.inner.lock();
        for &q in qubits {
            Self::check_owner(&g.owner, rank, q)?;
        }
        Ok(g.sim.measure_z_parity(qubits)?)
    }

    /// Models the quantum-coherent interconnect: entangles two fresh |0>
    /// qubits on (possibly) different ranks into (|00> + |11>)/sqrt(2).
    ///
    /// This is the *only* cross-rank quantum operation; everything else must
    /// go through teleportation/fanout protocols built on it.
    pub fn entangle_epr(&self, qa: QubitId, qb: QubitId) -> Result<()> {
        let mut g = self.inner.lock();
        if !g.owner.contains_key(&qa) {
            return Err(QmpiError::Sim(qsim::SimError::UnknownQubit(qa)));
        }
        if !g.owner.contains_key(&qb) {
            return Err(QmpiError::Sim(qsim::SimError::UnknownQubit(qb)));
        }
        for &q in &[qa, qb] {
            if g.sim.prob_one(q)? > 1e-9 {
                return Err(QmpiError::EprQubitNotFresh(q));
            }
        }
        g.sim.apply(Gate::H, qa)?;
        g.sim.cnot(qa, qb)?;
        Ok(())
    }

    /// Expectation value of a Pauli string over qubits owned by `rank` (or,
    /// with `rank == usize::MAX` from diagnostics, any qubits).
    pub fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64> {
        let g = self.inner.lock();
        Ok(g.sim.expectation(terms)?)
    }

    /// Global state snapshot in the given qubit order — diagnostics for
    /// tests and examples ("the state vector faithfully represents the
    /// quantum state of the distributed quantum computer", Section 6).
    pub fn state_vector(&self, order: &[QubitId]) -> Result<State> {
        let g = self.inner.lock();
        Ok(g.sim.state_vector(order)?)
    }

    /// Number of live qubits (diagnostics).
    pub fn n_qubits(&self) -> usize {
        self.inner.lock().sim.n_qubits()
    }

    /// Total gates applied (diagnostics).
    pub fn gate_count(&self) -> u64 {
        self.inner.lock().sim.gate_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_enforced_on_gates() {
        let b = Backend::new(1);
        let q0 = b.alloc(0, 1)[0];
        let q1 = b.alloc(1, 1)[0];
        assert!(b.apply(0, Gate::H, q0).is_ok());
        assert_eq!(
            b.apply(0, Gate::H, q1),
            Err(QmpiError::Locality { qubit: q1, owner: 1, acting: 0 })
        );
        assert!(b.cnot(0, q0, q1).is_err(), "cross-rank CNOT must be rejected");
    }

    #[test]
    fn entangle_epr_creates_bell_pair() {
        let b = Backend::new(3);
        let qa = b.alloc(0, 1)[0];
        let qb = b.alloc(1, 1)[0];
        b.entangle_epr(qa, qb).unwrap();
        let st = b.state_vector(&[qa, qb]).unwrap();
        assert!((st.probability(0b00) - 0.5).abs() < 1e-10);
        assert!((st.probability(0b11) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn entangle_requires_fresh_qubits() {
        let b = Backend::new(3);
        let qa = b.alloc(0, 1)[0];
        let qb = b.alloc(1, 1)[0];
        b.apply(0, Gate::X, qa).unwrap();
        assert_eq!(b.entangle_epr(qa, qb), Err(QmpiError::EprQubitNotFresh(qa)));
    }

    #[test]
    fn free_transfers_out_of_registry() {
        let b = Backend::new(1);
        let q = b.alloc(0, 1)[0];
        assert_eq!(b.free(0, q), Ok(false));
        assert!(b.apply(0, Gate::X, q).is_err());
    }

    #[test]
    fn cross_rank_free_rejected() {
        let b = Backend::new(1);
        let q = b.alloc(0, 1)[0];
        assert!(matches!(b.free(1, q), Err(QmpiError::Locality { .. })));
    }

    #[test]
    fn epr_measurements_agree() {
        let b = Backend::new(9);
        let qa = b.alloc(0, 1)[0];
        let qb = b.alloc(1, 1)[0];
        b.entangle_epr(qa, qb).unwrap();
        let ma = b.measure(0, qa).unwrap();
        let mb = b.measure(1, qb).unwrap();
        assert_eq!(ma, mb);
    }
}
