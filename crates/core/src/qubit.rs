//! Qubit handles — the `QMPI_QUBIT` datatype of Section 4.2.
//!
//! A [`Qubit`] is a *linear* handle: it is deliberately not `Clone`/`Copy`,
//! so the type system prevents aliasing a qubit (no cloning theorem, enforced
//! at compile time). Operations that consume the physical qubit (measurement
//! into the environment, teleporting away, uncopying) take the handle by
//! value; non-consuming operations borrow it.

use qsim::QubitId;

/// A handle to one allocated qubit, owned by the rank that allocated or
/// received it.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Qubit {
    pub(crate) id: QubitId,
}

impl Qubit {
    pub(crate) fn new(id: QubitId) -> Self {
        Qubit { id }
    }

    /// The underlying simulator id (stable for the qubit's lifetime).
    pub fn id(&self) -> QubitId {
        self.id
    }
}
