//! Communication-resource accounting.
//!
//! The paper's Tables 1–3 specify, per primitive, how many EPR pairs must be
//! established and how many classical correction bits must cross the network.
//! Every QMPI operation reports its consumption here, and the `table1/2/3`
//! experiment binaries diff snapshots of this ledger against the paper's
//! formulas.
//!
//! Conventions (DESIGN.md §5): EPR pairs are counted once per pair; classical
//! bits count only protocol-mandated correction bits (measurement outcomes),
//! not the rendezvous metadata of the simulation substrate, which is tallied
//! separately as `control_messages`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Global ledger shared by all ranks of a QMPI world.
pub struct ResourceLedger {
    epr_pairs: AtomicU64,
    classical_bits: AtomicU64,
    classical_messages: AtomicU64,
    control_messages: AtomicU64,
    epr_rounds: AtomicU64,
    buffer: Vec<AtomicI64>,
    buffer_peak: Vec<AtomicI64>,
}

impl ResourceLedger {
    /// Creates a ledger for `n` ranks.
    pub fn new(n: usize) -> Self {
        ResourceLedger {
            epr_pairs: AtomicU64::new(0),
            classical_bits: AtomicU64::new(0),
            classical_messages: AtomicU64::new(0),
            control_messages: AtomicU64::new(0),
            epr_rounds: AtomicU64::new(0),
            buffer: (0..n).map(|_| AtomicI64::new(0)).collect(),
            buffer_peak: (0..n).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// Records one established EPR pair between two ranks.
    pub fn record_epr_pair(&self) {
        self.epr_pairs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bits` protocol-mandated classical correction bits carried in
    /// one message.
    pub fn record_classical(&self, bits: u64) {
        self.classical_bits.fetch_add(bits, Ordering::Relaxed);
        self.classical_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a substrate control message (rendezvous metadata; not a
    /// protocol cost).
    pub fn record_control(&self) {
        self.control_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one round of parallel EPR establishment (used to validate
    /// constant-quantum-depth claims, e.g. the 2E cat-state construction).
    pub fn record_epr_round(&self) {
        self.epr_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments `rank`'s EPR-buffer occupancy; returns the new value.
    pub fn buffer_inc(&self, rank: usize) -> i64 {
        let new = self.buffer[rank].fetch_add(1, Ordering::Relaxed) + 1;
        self.buffer_peak[rank].fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Decrements `rank`'s EPR-buffer occupancy (half consumed or promoted
    /// to a data qubit).
    pub fn buffer_dec(&self, rank: usize) {
        self.buffer[rank].fetch_sub(1, Ordering::Relaxed);
    }

    /// Current buffered EPR halves at `rank`.
    pub fn buffer_level(&self, rank: usize) -> i64 {
        self.buffer[rank].load(Ordering::Relaxed)
    }

    /// Peak buffered EPR halves observed at `rank` — the minimum SENDQ `S`
    /// this execution would have required.
    pub fn buffer_peak(&self, rank: usize) -> i64 {
        self.buffer_peak[rank].load(Ordering::Relaxed)
    }

    /// Largest per-rank peak across all ranks.
    pub fn max_buffer_peak(&self) -> i64 {
        self.buffer_peak
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Point-in-time totals.
    pub fn snapshot(&self) -> ResourceSnapshot {
        ResourceSnapshot {
            epr_pairs: self.epr_pairs.load(Ordering::Relaxed),
            classical_bits: self.classical_bits.load(Ordering::Relaxed),
            classical_messages: self.classical_messages.load(Ordering::Relaxed),
            control_messages: self.control_messages.load(Ordering::Relaxed),
            epr_rounds: self.epr_rounds.load(Ordering::Relaxed),
        }
    }
}

/// Totals at one point in time; subtract snapshots to measure an operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceSnapshot {
    /// EPR pairs established.
    pub epr_pairs: u64,
    /// Protocol-mandated classical bits.
    pub classical_bits: u64,
    /// Messages carrying those bits.
    pub classical_messages: u64,
    /// Substrate control messages (not a protocol cost).
    pub control_messages: u64,
    /// Parallel EPR-establishment rounds.
    pub epr_rounds: u64,
}

impl std::ops::Sub for ResourceSnapshot {
    type Output = ResourceSnapshot;
    fn sub(self, rhs: ResourceSnapshot) -> ResourceSnapshot {
        ResourceSnapshot {
            epr_pairs: self.epr_pairs - rhs.epr_pairs,
            classical_bits: self.classical_bits - rhs.classical_bits,
            classical_messages: self.classical_messages - rhs.classical_messages,
            control_messages: self.control_messages - rhs.control_messages,
            epr_rounds: self.epr_rounds - rhs.epr_rounds,
        }
    }
}

impl std::fmt::Display for ResourceSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EPR pairs: {}, classical bits: {} (in {} msgs), EPR rounds: {}",
            self.epr_pairs, self.classical_bits, self.classical_messages, self.epr_rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let ledger = ResourceLedger::new(2);
        let before = ledger.snapshot();
        ledger.record_epr_pair();
        ledger.record_epr_pair();
        ledger.record_classical(2);
        let delta = ledger.snapshot() - before;
        assert_eq!(delta.epr_pairs, 2);
        assert_eq!(delta.classical_bits, 2);
        assert_eq!(delta.classical_messages, 1);
    }

    #[test]
    fn buffer_peak_tracking() {
        let ledger = ResourceLedger::new(1);
        ledger.buffer_inc(0);
        ledger.buffer_inc(0);
        ledger.buffer_dec(0);
        ledger.buffer_inc(0);
        assert_eq!(ledger.buffer_level(0), 2);
        assert_eq!(ledger.buffer_peak(0), 2);
        ledger.buffer_dec(0);
        ledger.buffer_dec(0);
        assert_eq!(ledger.buffer_level(0), 0);
        assert_eq!(ledger.buffer_peak(0), 2);
        assert_eq!(ledger.max_buffer_peak(), 2);
    }

    #[test]
    fn control_messages_tracked_separately() {
        let ledger = ResourceLedger::new(1);
        ledger.record_control();
        let s = ledger.snapshot();
        assert_eq!(s.control_messages, 1);
        assert_eq!(s.classical_bits, 0);
    }
}
