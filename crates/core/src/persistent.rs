//! Persistent communication requests (Section 4.7, future extension).
//!
//! "All required EPR pairs can be prepared before starting communication
//! and, in particular, before the data to be sent is available.
//! Point-to-point [...] communication can then be performed with purely
//! classical communication." — this module implements exactly that: `init`
//! pre-establishes a pool of EPR pairs (bounded by the SENDQ `S` budget);
//! each `start` consumes one pooled pair and crosses the network with a
//! single classical bit, i.e. **zero quantum communication depth**.

use crate::context::{ptag, EprRole, ProtoOp, QTag, QmpiRank};
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;
use std::collections::VecDeque;

/// Sender side of a persistent entangled-copy channel.
#[derive(Debug)]
pub struct PersistentSend {
    dest: usize,
    tag: QTag,
    pool: VecDeque<Qubit>,
}

/// Receiver side of a persistent entangled-copy channel.
#[derive(Debug)]
pub struct PersistentRecv {
    src: usize,
    tag: QTag,
    pool: VecDeque<Qubit>,
}

impl QmpiRank {
    /// QMPI_Send_init: pre-establishes `count` EPR pairs toward `dest`.
    /// The matching call is [`QmpiRank::recv_init`] on `dest`.
    pub fn send_init(&self, dest: usize, tag: QTag, count: usize) -> Result<PersistentSend> {
        let mut requests = Vec::with_capacity(count);
        let mut pool = VecDeque::with_capacity(count);
        for _ in 0..count {
            let q = self.alloc_one();
            requests.push(self.iprepare_epr_role(&q, dest, tag, EprRole::Origin)?);
            pool.push_back(q);
        }
        for req in requests {
            req.wait(self)?;
        }
        Ok(PersistentSend { dest, tag, pool })
    }

    /// QMPI_Recv_init: pre-establishes `count` EPR pairs from `src`.
    pub fn recv_init(&self, src: usize, tag: QTag, count: usize) -> Result<PersistentRecv> {
        let mut requests = Vec::with_capacity(count);
        let mut pool = VecDeque::with_capacity(count);
        for _ in 0..count {
            let q = self.alloc_one();
            requests.push(self.iprepare_epr_role(&q, src, tag, EprRole::Target)?);
            pool.push_back(q);
        }
        for req in requests {
            req.wait(self)?;
        }
        Ok(PersistentRecv { src, tag, pool })
    }
}

impl PersistentSend {
    /// Remaining pre-established pairs.
    pub fn remaining(&self) -> usize {
        self.pool.len()
    }

    /// QMPI_Start (send side): fans `qubit` out to the peer using a pooled
    /// pair — classical communication only (one bit).
    pub fn start(&mut self, ctx: &QmpiRank, qubit: &Qubit) -> Result<()> {
        let epr = self
            .pool
            .pop_front()
            .ok_or_else(|| QmpiError::Protocol("persistent send pool exhausted".into()))?;
        ctx.cnot(qubit, &epr)?;
        let m = ctx.measure_and_free(epr)?;
        ctx.ledger().buffer_dec(ctx.rank());
        ctx.proto
            .send(&m, self.dest, ptag(ProtoOp::CopyFix, self.tag));
        ctx.ledger().record_classical(1);
        Ok(())
    }

    /// Releases unused pooled pairs (measures them away).
    pub fn free(mut self, ctx: &QmpiRank) -> Result<()> {
        while let Some(q) = self.pool.pop_front() {
            ctx.measure_and_free(q)?;
            ctx.ledger().buffer_dec(ctx.rank());
        }
        Ok(())
    }
}

impl PersistentRecv {
    /// Remaining pre-established pairs.
    pub fn remaining(&self) -> usize {
        self.pool.len()
    }

    /// QMPI_Start (receive side): completes the entangled copy, returning
    /// the data qubit — classical communication only.
    pub fn start(&mut self, ctx: &QmpiRank) -> Result<Qubit> {
        let q = self
            .pool
            .pop_front()
            .ok_or_else(|| QmpiError::Protocol("persistent recv pool exhausted".into()))?;
        let (m, _) = ctx
            .proto
            .recv::<bool>(self.src, ptag(ProtoOp::CopyFix, self.tag));
        if m {
            ctx.x(&q)?;
        }
        ctx.ledger().buffer_dec(ctx.rank());
        Ok(q)
    }

    /// Releases unused pooled pairs.
    pub fn free(mut self, ctx: &QmpiRank) -> Result<()> {
        while let Some(q) = self.pool.pop_front() {
            ctx.measure_and_free(q)?;
            ctx.ledger().buffer_dec(ctx.rank());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::context::run;

    #[test]
    fn persistent_start_is_classical_only() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let mut chan = ctx.send_init(1, 5, 3).unwrap();
                assert_eq!(chan.remaining(), 3);
                // Three data qubits become available *after* the pairs exist.
                let (delta, ()) = ctx.measure_resources(|| {
                    for i in 0..3 {
                        let q = ctx.alloc_one();
                        if i % 2 == 0 {
                            ctx.x(&q).unwrap();
                        }
                        chan.start(ctx, &q).unwrap();
                        ctx.measure_and_free(q).unwrap();
                    }
                });
                chan.free(ctx).unwrap();
                (delta, vec![])
            } else {
                let mut chan = ctx.recv_init(0, 5, 3).unwrap();
                let (delta, ms) = ctx.measure_resources(|| {
                    let mut ms = Vec::new();
                    for _ in 0..3 {
                        let q = chan.start(ctx).unwrap();
                        ms.push(ctx.measure_and_free(q).unwrap());
                    }
                    ms
                });
                chan.free(ctx).unwrap();
                (delta, ms)
            }
        });
        // Zero EPR pairs during the start phase; one bit per message.
        assert_eq!(
            out[0].0.epr_pairs, 0,
            "starts must be classical-only (Section 4.7)"
        );
        assert_eq!(out[0].0.classical_bits, 3);
        assert_eq!(out[1].1, vec![true, false, true]);
    }

    #[test]
    fn pool_exhaustion_errors() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let mut chan = ctx.send_init(1, 1, 1).unwrap();
                let q = ctx.alloc_one();
                chan.start(ctx, &q).unwrap();
                let err = chan.start(ctx, &q).is_err();
                ctx.measure_and_free(q).unwrap();
                chan.free(ctx).unwrap();
                err
            } else {
                let mut chan = ctx.recv_init(0, 1, 1).unwrap();
                let q = chan.start(ctx).unwrap();
                ctx.measure_and_free(q).unwrap();
                chan.free(ctx).unwrap();
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn pool_respects_s_limit() {
        use crate::context::{run_with_config, QmpiConfig};
        let cfg = QmpiConfig::new().seed(3).s_limit(2);
        let out = run_with_config(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                // 3 pre-established pairs exceed S = 2.
                ctx.send_init(1, 0, 3).is_err()
            } else {
                ctx.recv_init(0, 0, 3).is_err()
            }
        });
        assert!(out[0] && out[1]);
    }
}
