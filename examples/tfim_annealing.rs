//! Listing 1 of the paper: distributed transverse-field Ising model time
//! evolution with an annealing schedule, ported from the QMPI C++
//! prototype to the Rust API.
//!
//! Spins are block-distributed over 2 QMPI ranks; every Trotter step
//! exchanges ring-boundary qubits through entangled copies; annealing
//! sweeps J: 0 -> 1 and Γ: 1 -> 0; the final measurement is gathered with
//! *classical* MPI (`MPI_Gather`), exactly as in the listing.
//!
//! Run: `cargo run --example tfim_annealing --release`

use qalgo::tfim;

fn main() {
    // Listing 1 parameters.
    let num_local_spins = 2;
    let num_annealing_steps = 100;
    let num_trotter = 1;
    let time = 1.0;
    let n_ranks = 2;

    let out = qmpi::run(n_ranks, move |ctx| {
        let res = tfim::anneal(ctx, num_local_spins, num_annealing_steps, time, num_trotter)
            .expect("annealing run");
        // Gather all (classical) results and output — MPI_Gather in the paper.
        let gathered = ctx.classical().gather(&res, 0);
        if ctx.rank() == 0 {
            let all: Vec<bool> = gathered.unwrap().into_iter().flatten().collect();
            print!("Measurements: ");
            for r in &all {
                print!("{} ", *r as u8);
            }
            println!();
            let n = all.len();
            let afm_bonds = (0..n).filter(|&i| all[i] != all[(i + 1) % n]).count();
            println!("antiferromagnetic bonds: {afm_bonds}/{n} (J > 0 ground state of the ring)");
        }
        let snap = ctx.resources();
        if ctx.rank() == 0 {
            println!(
                "communication: {} EPR pairs, {} classical correction bits",
                snap.epr_pairs, snap.classical_bits
            );
            println!(
                "peak EPR buffer per node: {} (the SENDQ S this run required)",
                ctx.ledger().max_buffer_peak()
            );
        }
        res
    });
    let total: usize = out.iter().map(|v| v.len()).sum();
    println!("({total} spins measured across {n_ranks} ranks)");
}
