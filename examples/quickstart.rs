//! Quickstart — the paper's Section 6 example program, verbatim semantics:
//! establish an EPR pair between two QMPI ranks and measure both halves.
//! "Both ranks observe the same value when measuring their share."
//!
//! Run: `cargo run --example quickstart`

use qmpi::run;

fn main() {
    let outcomes = run(2, |ctx| {
        // QMPI_Alloc_qmem(1)
        let qubit = ctx.alloc_one();
        let rank = ctx.rank();
        let dest = if rank == 0 { 1 } else { 0 };
        // QMPI_Prepare_EPR(qubit, dest, 0, QMPI_COMM_WORLD)
        ctx.prepare_epr(&qubit, dest, 0).expect("EPR establishment");
        // Measure the local half, then QMPI_Free_qmem.
        let res = ctx.measure_and_free(qubit).expect("measurement");
        println!("{rank}: {}", res as u8);
        res
    });
    assert_eq!(outcomes[0], outcomes[1], "EPR halves must agree");
    println!(
        "EPR correlation verified: both ranks observed {}",
        outcomes[0] as u8
    );

    // The same program, repeated to show the statistics are fair coin flips
    // with perfect cross-rank correlation.
    let mut ones = 0;
    let trials = 200;
    for seed in 0..trials {
        let cfg = qmpi::QmpiConfig::new().seed(seed);
        let out = qmpi::run_with_config(2, cfg, |ctx| {
            let q = ctx.alloc_one();
            ctx.prepare_epr(&q, 1 - ctx.rank(), 0).unwrap();
            ctx.measure_and_free(q).unwrap()
        });
        assert_eq!(out[0], out[1]);
        if out[0] {
            ones += 1;
        }
    }
    println!("{ones}/{trials} trials measured |11>, the rest |00> — an unbiased shared coin.");
}
