//! Teleportation (Fig. 3) and entangled copies (Fig. 2/3a) between ranks.
//!
//! Demonstrates the two point-to-point modes of Section 4.4 — move
//! semantics (`QMPI_Send_move`) and copy semantics (`QMPI_Send` +
//! `QMPI_Unsend`) — and prints the resources each consumed, matching
//! Table 1.
//!
//! Run: `cargo run --example teleportation`

use qmpi::run;
use qsim::Pauli;

fn main() {
    println!("--- move semantics: teleport an arbitrary state 0 -> 1 ---");
    let out = run(2, |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            // Prepare a recognizable Bloch vector.
            ctx.ry(&q, 1.047).unwrap(); // 60 degrees
            ctx.rz(&q, 0.785).unwrap(); // 45 degrees
            let (delta, ()) = ctx.measure_resources(|| ctx.send_move(q, 1, 0).unwrap());
            println!("rank 0: teleported its qubit using {delta}");
            (0.0, 0.0, 0.0)
        } else {
            let (_, q) = ctx.measure_resources(|| ctx.recv_move(0, 0).unwrap());
            let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
            let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
            let y = ctx.expectation(&[(&q, Pauli::Y)]).unwrap();
            ctx.measure_and_free(q).unwrap();
            (z, x, y)
        }
    });
    let (z, x, y) = out[1];
    let theta: f64 = 1.047;
    let phi: f64 = 0.785;
    println!(
        "rank 1 received Bloch vector  (Z, X, Y) = ({z:.4}, {x:.4}, {y:.4})\n\
         prepared at rank 0:           (Z, X, Y) = ({:.4}, {:.4}, {:.4})",
        theta.cos(),
        theta.sin() * phi.cos(),
        theta.sin() * phi.sin()
    );

    println!("\n--- copy semantics: fanout, remote controlled gate, uncopy ---");
    let out = run(2, |ctx| {
        if ctx.rank() == 0 {
            let ctrl = ctx.alloc_one();
            ctx.h(&ctrl).unwrap();
            // Fan the control out (Fig. 2), let rank 1 use it, take it back.
            ctx.send(&ctrl, 1, 0).unwrap();
            ctx.unsend(&ctrl, 1, 0).unwrap();
            ctx.barrier();
            let x = ctx.expectation(&[(&ctrl, Pauli::X)]).unwrap();
            // Do not collapse the pair before rank 1 reads its marginal.
            ctx.barrier();
            ctx.measure_and_free(ctrl).unwrap();
            x
        } else {
            let copy = ctx.recv(0, 0).unwrap();
            let target = ctx.alloc_one();
            // Remote-controlled NOT executed with a local gate on the copy.
            ctx.cnot(&copy, &target).unwrap();
            ctx.unrecv(copy, 0, 0).unwrap();
            ctx.barrier();
            // After the uncopy the control is restored — but the target
            // remains maximally entangled with it (a remote CNOT happened),
            // so its local marginal is fully mixed: <Z> = 0.
            let z = ctx.expectation(&[(&target, Pauli::Z)]).unwrap();
            ctx.barrier();
            ctx.measure_and_free(target).unwrap();
            z
        }
    });
    println!(
        "after copy/uncopy: rank 1 target <Z> = {:.4} (fully mixed marginal => entangled),",
        out[1]
    );
    println!("and rank 0 only paid 1 EPR pair + 2 classical bits for the round trip.");
}
