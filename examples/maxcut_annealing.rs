//! Adiabatic MaxCut on a distributed quantum computer — the optimization
//! workflow that motivates the paper's Section 7.2: map the problem to an
//! Ising model, anneal from the transverse-field ground state, measure a
//! cut.
//!
//! Run: `cargo run --example maxcut_annealing --release`

use qalgo::maxcut::{anneal_maxcut, Graph};

fn main() {
    // A 6-cycle: bipartite, so the optimum cuts all 6 edges.
    let graph = Graph::cycle(6);
    let optimum = graph.brute_force_maxcut();
    println!(
        "graph: 6-cycle, {} edges, brute-force optimum cut = {optimum}",
        graph.edges.len()
    );

    let n_ranks = 2;
    let g = graph.clone();
    let out = qmpi::run_with_config(n_ranks, qmpi::QmpiConfig::new().seed(2024), move |ctx| {
        let assignment = anneal_maxcut(ctx, &g, 50, 0.4).expect("anneal");
        let snap = ctx.resources();
        (assignment, snap)
    });
    let assignment: Vec<bool> = out.iter().flat_map(|(a, _)| a.clone()).collect();
    let cut = graph.cut_value(&assignment);
    println!(
        "annealed assignment over {n_ranks} ranks: {:?}",
        assignment.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );
    println!("cut value: {cut} / optimum {optimum}");
    println!(
        "quantum communication: {} EPR pairs, {} classical bits (cross-rank edges only)",
        out[0].1.epr_pairs, out[0].1.classical_bits
    );
    assert!(
        cut + 1 >= optimum,
        "adiabatic run should land at or next to the optimum"
    );
}
