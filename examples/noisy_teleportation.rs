//! Fidelity-vs-noise (and vs-`S`-budget) study over an imperfect
//! interconnect.
//!
//! Relays |1> along an 8-rank teleport chain under a depolarizing EPR
//! channel ([`qmpi::QmpiConfig::noise`]) and compares the empirical
//! fidelity with the closed-form prediction on three backends from the
//! same configuration call: state-vector, sharded state-vector, and
//! stabilizer. A second section pairs noise with [`qmpi::QmpiConfig::s_limit`]
//! to show the SENDQ trade the paper reasons about, and the trace backend's
//! modeled fidelity for the identical protocol.
//!
//! Run: `cargo run --example noisy_teleportation`

use qalgo::fidelity::{analytic_teleport_fidelity, teleport_fidelity_sweep};
use qmpi::{run_with_config, BackendKind, NoiseChannel, NoiseModel, QmpiConfig};

const RANKS: usize = 8;
const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.1];

fn main() {
    println!("--- teleport |1> along {RANKS} ranks, depolarizing EPR noise ---");
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::Stabilizer,
    ] {
        // The stabilizer tableau is polynomial-cost, so give it more trials.
        let trials = if kind == BackendKind::Stabilizer {
            400
        } else {
            60
        };
        println!("backend: {kind} ({trials} trials/rate)");
        for pt in teleport_fidelity_sweep(kind, &RATES, RANKS, trials, 42) {
            println!(
                "  p = {:>5.3}   fidelity = {:.3}   analytic = {:.3}",
                pt.rate, pt.fidelity, pt.analytic
            );
        }
    }

    println!("\n--- modeled fidelity at paper scale (trace backend) ---");
    let noise = NoiseModel::epr_only(NoiseChannel::Depolarizing { p: 0.02 });
    for ranks in [8usize, 64, 256] {
        let cfg = QmpiConfig::new()
            .seed(1)
            .backend(BackendKind::Trace)
            .noise(noise);
        let out = run_with_config(ranks, cfg, move |ctx| {
            let r = ctx.rank();
            if r == 0 {
                let q = ctx.alloc_one();
                ctx.x(&q).unwrap();
                ctx.send_move(q, 1, 0).unwrap();
            } else {
                let q = ctx.recv_move(r - 1, (r - 1) as u16).unwrap();
                if r + 1 < ctx.size() {
                    ctx.send_move(q, r + 1, r as u16).unwrap();
                } else {
                    ctx.measure_and_free(q).unwrap();
                }
            }
            // The modeled fidelity is a property of the whole world; wait
            // for every hop before reading it.
            ctx.barrier();
            ctx.backend().modeled_fidelity()
        });
        println!(
            "  {ranks:>4} ranks: error-free probability = {:.4}  (analytic Z-fidelity = {:.4})",
            out[0].expect("the trace backend models fidelity"),
            analytic_teleport_fidelity(&noise, ranks - 1),
        );
    }

    println!("\n--- fidelity vs S budget: buffered pairs decohere too ---");
    // A rank that pre-establishes S pairs pays the EPR channel on every
    // buffered half up front. Model: prepare S pairs ahead, then consume
    // one — the delivered correlation degrades with everything the channel
    // already did, while S = 1 only ever exposes one pair.
    for s in [1u32, 2, 4] {
        let cfg = QmpiConfig::new()
            .seed(7)
            .s_limit(s)
            .backend(BackendKind::Stabilizer)
            .noise(NoiseModel::epr_only(NoiseChannel::Depolarizing { p: 0.05 }));
        let trials = 300u32;
        let out = run_with_config(2, cfg, move |ctx| {
            let dest = 1 - ctx.rank();
            let mut agree = 0u32;
            for _ in 0..trials {
                // Fill the whole S budget, then consume every pair.
                let qs: Vec<_> = (0..s).map(|_| ctx.alloc_one()).collect();
                for (i, q) in qs.iter().enumerate() {
                    ctx.prepare_epr(q, dest, i as u16).unwrap();
                }
                let mut bits = Vec::new();
                for q in qs {
                    bits.push(ctx.measure_and_free(q).unwrap());
                    ctx.ledger().buffer_dec(ctx.rank());
                }
                ctx.barrier();
                // Compare this rank's bits with the peer's.
                if ctx.rank() == 0 {
                    ctx.classical().send(&bits, dest, 9);
                } else {
                    let (peer, _) = ctx.classical().recv::<Vec<bool>>(dest, 9);
                    agree += u32::from(peer == bits);
                }
            }
            agree
        });
        println!(
            "  S = {s}: all-{s}-pairs-correlated rate = {:.3}  (per-pair analytic = {:.3})",
            f64::from(out[1]) / f64::from(trials),
            analytic_teleport_fidelity(
                &NoiseModel::epr_only(NoiseChannel::Depolarizing { p: 0.05 }),
                1
            ),
        );
    }
    println!("\nLarger S buffers more pairs in flight -> more exposure to the");
    println!("interconnect channel per delivered payload; the budget is a");
    println!("throughput/fidelity trade, not a free parameter.");
}
