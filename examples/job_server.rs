//! Job-server storm — the facility view of QMPI: many tenants, one
//! long-lived worker pool, S-budget admission control, per-job accounting.
//!
//! Fires a mixed storm of small jobs (teleportation, cat-state broadcast,
//! parity reduction) across backends — pooled shard workers alongside
//! spawn-per-job state-vector, stabilizer, and trace engines — then prints
//! the accounting table every tenant would be billed from: EPR pairs,
//! correction bits, rounds, buffer peaks, transport rounds, coalesced
//! flushes (command rounds saved by cross-rank batch coalescing), fidelity,
//! and wall/queue time.
//!
//! Run: `cargo run --release --example job_server`

use qmpi::{BackendKind, Parity, QmpiRank};
use qserve::{JobBackend, JobReport, JobServer, JobSpec, ServerConfig};
use qsim::Pauli;

/// Rank 0 teleports |-> = HX|0> to rank 1, which checks it arrived.
/// (Clifford-only on purpose: the storm also lands on the stabilizer
/// backend, which rejects arbitrary rotations.)
fn teleport(ctx: &QmpiRank) -> bool {
    if ctx.rank() == 0 {
        let q = ctx.alloc_one();
        ctx.x(&q).unwrap();
        ctx.h(&q).unwrap();
        ctx.send_move(q, 1, 0).unwrap();
        true
    } else {
        let q = ctx.recv_move(0, 0).unwrap();
        let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
        ctx.measure_and_free(q).unwrap();
        (x + 1.0).abs() < 1e-9
    }
}

/// Constant-depth GHZ across the whole world; every rank reports its
/// measured share (all shares must agree — checked over the job results).
fn cat_broadcast(ctx: &QmpiRank) -> bool {
    let share = ctx.cat_establish().unwrap();
    ctx.measure_and_free(share).unwrap()
}

/// Reversible parity reduction: odd ranks contribute |1>, the root reads
/// the XOR, then the reduction is undone.
fn parity(ctx: &QmpiRank) -> bool {
    let q = ctx.alloc_one();
    if ctx.rank() % 2 == 1 {
        ctx.x(&q).unwrap();
    }
    let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
    let read = result
        .as_ref()
        .map(|r| ctx.expectation(&[(r, Pauli::Z)]).unwrap() < 0.0);
    ctx.unreduce(&q, result, handle, &Parity).unwrap();
    ctx.measure_and_free(q).unwrap();
    // Only the root reads the parity; everyone else vacuously passes.
    read.is_none_or(|odd_count| odd_count == (ctx.size() / 2 % 2 == 1))
}

fn main() {
    // `QSERVE_TRANSPORT=unix-socket` pools real `qworker` child processes
    // instead of worker threads (requires the qworker binary: build with
    // `cargo build --release` first, or set QMPI_QWORKER_BIN).
    let transport = std::env::var("QSERVE_TRANSPORT")
        .ok()
        .map(|v| qmpi::TransportKind::parse(&v).expect("unknown QSERVE_TRANSPORT"))
        .unwrap_or_default();
    let server = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: 8,
        pool_slots: 4,
        pool_shards: 2,
        transport,
    });
    println!("shard-worker transport: {transport}");

    // Four tenants cycle through three protocols and four capacity
    // sources. Every job declares its S-budget through its s_limit.
    let tenants = ["alice", "bob", "carol", "dave"];
    let backends = [
        JobBackend::Pooled,
        JobBackend::Spawn(BackendKind::StateVector),
        JobBackend::Spawn(BackendKind::Stabilizer),
        JobBackend::Spawn(BackendKind::Trace),
    ];
    type Program = (&'static str, usize, fn(&QmpiRank) -> bool);
    let programs: [Program; 3] = [
        ("teleport", 2, teleport),
        ("cat-bcast", 4, cat_broadcast),
        ("parity", 3, parity),
    ];

    let mut handles = Vec::new();
    for i in 0..24 {
        let tenant = tenants[i % tenants.len()];
        let backend = backends[i % backends.len()];
        let (name, ranks, body) = programs[i % programs.len()];
        let spec = JobSpec::new(tenant, ranks)
            .seed(1000 + i as u64)
            .s_limit(2)
            .backend(backend);
        let handle = server.submit(spec, body).expect("storm jobs fit capacity");
        handles.push((name, handle));
    }
    println!(
        "submitted {} jobs from {} tenants over one {}-slot pool\n",
        handles.len(),
        tenants.len(),
        4
    );

    let mut reports: Vec<(&str, bool, JobReport)> = handles
        .into_iter()
        .map(|(name, handle)| {
            let out = handle.wait().expect("storm job must succeed");
            // Trace jobs only count; every stateful job also verifies:
            // the cat job's shares must agree, the others' checks pass.
            let ok = out.report.backend == BackendKind::Trace
                || match name {
                    "cat-bcast" => out.results.iter().all(|&m| m == out.results[0]),
                    _ => out.results.iter().all(|&rank_ok| rank_ok),
                };
            (name, ok, out.report)
        })
        .collect();
    reports.sort_by_key(|(_, _, r)| r.dispatch_seq);

    println!("{:<10} ok {}", "program", JobReport::table_header());
    for (name, ok, report) in &reports {
        println!(
            "{name:<10} {} {}",
            if *ok { " ✓" } else { " ✗" },
            report.table_row()
        );
    }
    assert!(reports.iter().all(|(_, ok, _)| *ok));

    let saved: u64 = reports
        .iter()
        .filter_map(|(_, _, r)| r.transport.map(|t| t.coalesced_flushes))
        .sum();
    println!("\ncross-rank coalescing saved {saved} command fan-out rounds across the storm");

    server.drain();
    let stats = server.stats();
    println!(
        "\n{} jobs finished; S-budget back to {}/{}; pool slots free: {}",
        stats.finished, stats.used_s_budget, 64, stats.pool_available
    );
}
