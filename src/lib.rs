//! Umbrella crate for the QMPI reproduction: re-exports every workspace
//! crate so examples and integration tests have a single import surface.
//!
//! See `README.md` for the repository tour and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-reproduction inventory.

pub use cmpi;
pub use qalgo;
pub use qchem;
pub use qmpi;
pub use qserve;
pub use qsim;
pub use sendq;
