//! Shard worker process for the socket shard transports.
//!
//! Spawned by the controller (`qmpi::backend::remote_transport`), never by
//! hand: `qworker <addr> <rank> <epoch> <watchdog_ms>`. It connects back
//! to the controller's listener, authenticates with a HELLO frame, and
//! runs the shard event loop until shut down.

fn main() {
    qmpi::qworker_main();
}
